file(REMOVE_RECURSE
  "CMakeFiles/dissemination_planning.dir/dissemination_planning.cpp.o"
  "CMakeFiles/dissemination_planning.dir/dissemination_planning.cpp.o.d"
  "dissemination_planning"
  "dissemination_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissemination_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/clf_test.cc" "tests/CMakeFiles/trace_test.dir/trace/clf_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/clf_test.cc.o.d"
  "/root/repo/tests/trace/corpus_test.cc" "tests/CMakeFiles/trace_test.dir/trace/corpus_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/corpus_test.cc.o.d"
  "/root/repo/tests/trace/filter_test.cc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o.d"
  "/root/repo/tests/trace/generator_test.cc" "tests/CMakeFiles/trace_test.dir/trace/generator_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/generator_test.cc.o.d"
  "/root/repo/tests/trace/link_graph_test.cc" "tests/CMakeFiles/trace_test.dir/trace/link_graph_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/link_graph_test.cc.o.d"
  "/root/repo/tests/trace/property_test.cc" "tests/CMakeFiles/trace_test.dir/trace/property_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/property_test.cc.o.d"
  "/root/repo/tests/trace/sessionizer_test.cc" "tests/CMakeFiles/trace_test.dir/trace/sessionizer_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/sessionizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dissem/CMakeFiles/sds_dissem.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/sds_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

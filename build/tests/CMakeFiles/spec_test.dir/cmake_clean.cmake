file(REMOVE_RECURSE
  "CMakeFiles/spec_test.dir/spec/aging_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/aging_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/client_cache_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/client_cache_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/closure_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/closure_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/dependency_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/dependency_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/policy_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/policy_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/property_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/property_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/queueing_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/queueing_test.cc.o.d"
  "CMakeFiles/spec_test.dir/spec/simulator_test.cc.o"
  "CMakeFiles/spec_test.dir/spec/simulator_test.cc.o.d"
  "spec_test"
  "spec_test.pdb"
  "spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

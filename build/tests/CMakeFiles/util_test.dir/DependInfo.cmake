
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/ascii_chart_test.cc" "tests/CMakeFiles/util_test.dir/util/ascii_chart_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/ascii_chart_test.cc.o.d"
  "/root/repo/tests/util/distributions_test.cc" "tests/CMakeFiles/util_test.dir/util/distributions_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/distributions_test.cc.o.d"
  "/root/repo/tests/util/histogram_test.cc" "tests/CMakeFiles/util_test.dir/util/histogram_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/util_test.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/string_util_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/util_test.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dissem/CMakeFiles/sds_dissem.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/sds_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

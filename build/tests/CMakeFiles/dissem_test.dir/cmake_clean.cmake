file(REMOVE_RECURSE
  "CMakeFiles/dissem_test.dir/dissem/allocation_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/allocation_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/classify_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/classify_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/cluster_simulator_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/cluster_simulator_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/expfit_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/expfit_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/popularity_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/popularity_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/property_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/property_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/proxy_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/proxy_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/pull_cache_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/pull_cache_test.cc.o.d"
  "CMakeFiles/dissem_test.dir/dissem/simulator_test.cc.o"
  "CMakeFiles/dissem_test.dir/dissem/simulator_test.cc.o.d"
  "dissem_test"
  "dissem_test.pdb"
  "dissem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dissem_test.
# This may be replaced when dependencies are built.

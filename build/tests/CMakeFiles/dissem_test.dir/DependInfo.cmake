
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dissem/allocation_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/allocation_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/allocation_test.cc.o.d"
  "/root/repo/tests/dissem/classify_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/classify_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/classify_test.cc.o.d"
  "/root/repo/tests/dissem/cluster_simulator_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/cluster_simulator_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/cluster_simulator_test.cc.o.d"
  "/root/repo/tests/dissem/expfit_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/expfit_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/expfit_test.cc.o.d"
  "/root/repo/tests/dissem/popularity_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/popularity_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/popularity_test.cc.o.d"
  "/root/repo/tests/dissem/property_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/property_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/property_test.cc.o.d"
  "/root/repo/tests/dissem/proxy_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/proxy_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/proxy_test.cc.o.d"
  "/root/repo/tests/dissem/pull_cache_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/pull_cache_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/pull_cache_test.cc.o.d"
  "/root/repo/tests/dissem/simulator_test.cc" "tests/CMakeFiles/dissem_test.dir/dissem/simulator_test.cc.o" "gcc" "tests/CMakeFiles/dissem_test.dir/dissem/simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dissem/CMakeFiles/sds_dissem.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/sds_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

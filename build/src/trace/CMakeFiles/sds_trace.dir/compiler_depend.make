# Empty compiler generated dependencies file for sds_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sds_trace.dir/clf.cc.o"
  "CMakeFiles/sds_trace.dir/clf.cc.o.d"
  "CMakeFiles/sds_trace.dir/corpus.cc.o"
  "CMakeFiles/sds_trace.dir/corpus.cc.o.d"
  "CMakeFiles/sds_trace.dir/filter.cc.o"
  "CMakeFiles/sds_trace.dir/filter.cc.o.d"
  "CMakeFiles/sds_trace.dir/generator.cc.o"
  "CMakeFiles/sds_trace.dir/generator.cc.o.d"
  "CMakeFiles/sds_trace.dir/link_graph.cc.o"
  "CMakeFiles/sds_trace.dir/link_graph.cc.o.d"
  "CMakeFiles/sds_trace.dir/request.cc.o"
  "CMakeFiles/sds_trace.dir/request.cc.o.d"
  "CMakeFiles/sds_trace.dir/sessionizer.cc.o"
  "CMakeFiles/sds_trace.dir/sessionizer.cc.o.d"
  "libsds_trace.a"
  "libsds_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

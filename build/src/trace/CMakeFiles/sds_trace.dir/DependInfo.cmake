
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/clf.cc" "src/trace/CMakeFiles/sds_trace.dir/clf.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/clf.cc.o.d"
  "/root/repo/src/trace/corpus.cc" "src/trace/CMakeFiles/sds_trace.dir/corpus.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/corpus.cc.o.d"
  "/root/repo/src/trace/filter.cc" "src/trace/CMakeFiles/sds_trace.dir/filter.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/filter.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/sds_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/link_graph.cc" "src/trace/CMakeFiles/sds_trace.dir/link_graph.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/link_graph.cc.o.d"
  "/root/repo/src/trace/request.cc" "src/trace/CMakeFiles/sds_trace.dir/request.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/request.cc.o.d"
  "/root/repo/src/trace/sessionizer.cc" "src/trace/CMakeFiles/sds_trace.dir/sessionizer.cc.o" "gcc" "src/trace/CMakeFiles/sds_trace.dir/sessionizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

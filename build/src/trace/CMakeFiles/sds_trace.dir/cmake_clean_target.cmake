file(REMOVE_RECURSE
  "libsds_trace.a"
)

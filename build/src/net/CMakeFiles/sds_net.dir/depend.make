# Empty dependencies file for sds_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sds_net.dir/clientele_tree.cc.o"
  "CMakeFiles/sds_net.dir/clientele_tree.cc.o.d"
  "CMakeFiles/sds_net.dir/placement.cc.o"
  "CMakeFiles/sds_net.dir/placement.cc.o.d"
  "CMakeFiles/sds_net.dir/topology.cc.o"
  "CMakeFiles/sds_net.dir/topology.cc.o.d"
  "libsds_net.a"
  "libsds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsds_net.a"
)

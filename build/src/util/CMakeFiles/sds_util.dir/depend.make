# Empty dependencies file for sds_util.
# This may be replaced when dependencies are built.

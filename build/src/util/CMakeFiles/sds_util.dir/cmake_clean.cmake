file(REMOVE_RECURSE
  "CMakeFiles/sds_util.dir/ascii_chart.cc.o"
  "CMakeFiles/sds_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/sds_util.dir/distributions.cc.o"
  "CMakeFiles/sds_util.dir/distributions.cc.o.d"
  "CMakeFiles/sds_util.dir/histogram.cc.o"
  "CMakeFiles/sds_util.dir/histogram.cc.o.d"
  "CMakeFiles/sds_util.dir/logging.cc.o"
  "CMakeFiles/sds_util.dir/logging.cc.o.d"
  "CMakeFiles/sds_util.dir/rng.cc.o"
  "CMakeFiles/sds_util.dir/rng.cc.o.d"
  "CMakeFiles/sds_util.dir/stats.cc.o"
  "CMakeFiles/sds_util.dir/stats.cc.o.d"
  "CMakeFiles/sds_util.dir/status.cc.o"
  "CMakeFiles/sds_util.dir/status.cc.o.d"
  "CMakeFiles/sds_util.dir/string_util.cc.o"
  "CMakeFiles/sds_util.dir/string_util.cc.o.d"
  "CMakeFiles/sds_util.dir/table.cc.o"
  "CMakeFiles/sds_util.dir/table.cc.o.d"
  "libsds_util.a"
  "libsds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

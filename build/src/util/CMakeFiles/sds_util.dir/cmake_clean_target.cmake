file(REMOVE_RECURSE
  "libsds_util.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dissem/allocation.cc" "src/dissem/CMakeFiles/sds_dissem.dir/allocation.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/allocation.cc.o.d"
  "/root/repo/src/dissem/classify.cc" "src/dissem/CMakeFiles/sds_dissem.dir/classify.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/classify.cc.o.d"
  "/root/repo/src/dissem/cluster_simulator.cc" "src/dissem/CMakeFiles/sds_dissem.dir/cluster_simulator.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/cluster_simulator.cc.o.d"
  "/root/repo/src/dissem/expfit.cc" "src/dissem/CMakeFiles/sds_dissem.dir/expfit.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/expfit.cc.o.d"
  "/root/repo/src/dissem/popularity.cc" "src/dissem/CMakeFiles/sds_dissem.dir/popularity.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/popularity.cc.o.d"
  "/root/repo/src/dissem/pull_cache.cc" "src/dissem/CMakeFiles/sds_dissem.dir/pull_cache.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/pull_cache.cc.o.d"
  "/root/repo/src/dissem/simulator.cc" "src/dissem/CMakeFiles/sds_dissem.dir/simulator.cc.o" "gcc" "src/dissem/CMakeFiles/sds_dissem.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

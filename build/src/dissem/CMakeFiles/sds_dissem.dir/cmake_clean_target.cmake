file(REMOVE_RECURSE
  "libsds_dissem.a"
)

# Empty compiler generated dependencies file for sds_dissem.
# This may be replaced when dependencies are built.

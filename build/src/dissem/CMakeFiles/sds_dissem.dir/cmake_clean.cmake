file(REMOVE_RECURSE
  "CMakeFiles/sds_dissem.dir/allocation.cc.o"
  "CMakeFiles/sds_dissem.dir/allocation.cc.o.d"
  "CMakeFiles/sds_dissem.dir/classify.cc.o"
  "CMakeFiles/sds_dissem.dir/classify.cc.o.d"
  "CMakeFiles/sds_dissem.dir/cluster_simulator.cc.o"
  "CMakeFiles/sds_dissem.dir/cluster_simulator.cc.o.d"
  "CMakeFiles/sds_dissem.dir/expfit.cc.o"
  "CMakeFiles/sds_dissem.dir/expfit.cc.o.d"
  "CMakeFiles/sds_dissem.dir/popularity.cc.o"
  "CMakeFiles/sds_dissem.dir/popularity.cc.o.d"
  "CMakeFiles/sds_dissem.dir/pull_cache.cc.o"
  "CMakeFiles/sds_dissem.dir/pull_cache.cc.o.d"
  "CMakeFiles/sds_dissem.dir/simulator.cc.o"
  "CMakeFiles/sds_dissem.dir/simulator.cc.o.d"
  "libsds_dissem.a"
  "libsds_dissem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_dissem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsds_core.a"
)

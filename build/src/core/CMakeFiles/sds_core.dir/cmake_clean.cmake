file(REMOVE_RECURSE
  "CMakeFiles/sds_core.dir/combined.cc.o"
  "CMakeFiles/sds_core.dir/combined.cc.o.d"
  "CMakeFiles/sds_core.dir/experiments.cc.o"
  "CMakeFiles/sds_core.dir/experiments.cc.o.d"
  "CMakeFiles/sds_core.dir/fidelity.cc.o"
  "CMakeFiles/sds_core.dir/fidelity.cc.o.d"
  "CMakeFiles/sds_core.dir/workload.cc.o"
  "CMakeFiles/sds_core.dir/workload.cc.o.d"
  "libsds_core.a"
  "libsds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

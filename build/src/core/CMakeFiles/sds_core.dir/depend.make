# Empty dependencies file for sds_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/aging.cc" "src/spec/CMakeFiles/sds_spec.dir/aging.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/aging.cc.o.d"
  "/root/repo/src/spec/client_cache.cc" "src/spec/CMakeFiles/sds_spec.dir/client_cache.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/client_cache.cc.o.d"
  "/root/repo/src/spec/closure.cc" "src/spec/CMakeFiles/sds_spec.dir/closure.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/closure.cc.o.d"
  "/root/repo/src/spec/dependency.cc" "src/spec/CMakeFiles/sds_spec.dir/dependency.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/dependency.cc.o.d"
  "/root/repo/src/spec/metrics.cc" "src/spec/CMakeFiles/sds_spec.dir/metrics.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/metrics.cc.o.d"
  "/root/repo/src/spec/policy.cc" "src/spec/CMakeFiles/sds_spec.dir/policy.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/policy.cc.o.d"
  "/root/repo/src/spec/queueing.cc" "src/spec/CMakeFiles/sds_spec.dir/queueing.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/queueing.cc.o.d"
  "/root/repo/src/spec/simulator.cc" "src/spec/CMakeFiles/sds_spec.dir/simulator.cc.o" "gcc" "src/spec/CMakeFiles/sds_spec.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sds_spec.dir/aging.cc.o"
  "CMakeFiles/sds_spec.dir/aging.cc.o.d"
  "CMakeFiles/sds_spec.dir/client_cache.cc.o"
  "CMakeFiles/sds_spec.dir/client_cache.cc.o.d"
  "CMakeFiles/sds_spec.dir/closure.cc.o"
  "CMakeFiles/sds_spec.dir/closure.cc.o.d"
  "CMakeFiles/sds_spec.dir/dependency.cc.o"
  "CMakeFiles/sds_spec.dir/dependency.cc.o.d"
  "CMakeFiles/sds_spec.dir/metrics.cc.o"
  "CMakeFiles/sds_spec.dir/metrics.cc.o.d"
  "CMakeFiles/sds_spec.dir/policy.cc.o"
  "CMakeFiles/sds_spec.dir/policy.cc.o.d"
  "CMakeFiles/sds_spec.dir/queueing.cc.o"
  "CMakeFiles/sds_spec.dir/queueing.cc.o.d"
  "CMakeFiles/sds_spec.dir/simulator.cc.o"
  "CMakeFiles/sds_spec.dir/simulator.cc.o.d"
  "libsds_spec.a"
  "libsds_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sds_spec.
# This may be replaced when dependencies are built.

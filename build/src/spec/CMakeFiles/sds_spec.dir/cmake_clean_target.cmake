file(REMOVE_RECURSE
  "libsds_spec.a"
)

# Empty compiler generated dependencies file for abl_push_vs_pull.
# This may be replaced when dependencies are built.

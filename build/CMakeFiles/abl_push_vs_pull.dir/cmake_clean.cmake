file(REMOVE_RECURSE
  "CMakeFiles/abl_push_vs_pull.dir/bench/abl_push_vs_pull.cpp.o"
  "CMakeFiles/abl_push_vs_pull.dir/bench/abl_push_vs_pull.cpp.o.d"
  "bench/abl_push_vs_pull"
  "bench/abl_push_vs_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_push_vs_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

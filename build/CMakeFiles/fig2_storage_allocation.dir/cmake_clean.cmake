file(REMOVE_RECURSE
  "CMakeFiles/fig2_storage_allocation.dir/bench/fig2_storage_allocation.cpp.o"
  "CMakeFiles/fig2_storage_allocation.dir/bench/fig2_storage_allocation.cpp.o.d"
  "bench/fig2_storage_allocation"
  "bench/fig2_storage_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_storage_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_storage_allocation.
# This may be replaced when dependencies are built.

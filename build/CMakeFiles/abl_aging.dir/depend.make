# Empty dependencies file for abl_aging.
# This may be replaced when dependencies are built.

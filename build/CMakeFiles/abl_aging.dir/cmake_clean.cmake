file(REMOVE_RECURSE
  "CMakeFiles/abl_aging.dir/bench/abl_aging.cpp.o"
  "CMakeFiles/abl_aging.dir/bench/abl_aging.cpp.o.d"
  "bench/abl_aging"
  "bench/abl_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

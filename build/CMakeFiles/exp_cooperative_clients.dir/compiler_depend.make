# Empty compiler generated dependencies file for exp_cooperative_clients.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_cooperative_clients.dir/bench/exp_cooperative_clients.cpp.o"
  "CMakeFiles/exp_cooperative_clients.dir/bench/exp_cooperative_clients.cpp.o.d"
  "bench/exp_cooperative_clients"
  "bench/exp_cooperative_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cooperative_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

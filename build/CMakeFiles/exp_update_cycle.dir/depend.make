# Empty dependencies file for exp_update_cycle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_update_cycle.dir/bench/exp_update_cycle.cpp.o"
  "CMakeFiles/exp_update_cycle.dir/bench/exp_update_cycle.cpp.o.d"
  "bench/exp_update_cycle"
  "bench/exp_update_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_update_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig6_gains_vs_traffic.dir/bench/fig6_gains_vs_traffic.cpp.o"
  "CMakeFiles/fig6_gains_vs_traffic.dir/bench/fig6_gains_vs_traffic.cpp.o.d"
  "bench/fig6_gains_vs_traffic"
  "bench/fig6_gains_vs_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gains_vs_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

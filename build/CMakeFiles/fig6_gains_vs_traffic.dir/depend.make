# Empty dependencies file for fig6_gains_vs_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_hierarchy.dir/bench/abl_hierarchy.cpp.o"
  "CMakeFiles/abl_hierarchy.dir/bench/abl_hierarchy.cpp.o.d"
  "bench/abl_hierarchy"
  "bench/abl_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_dissemination_savings.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_dissemination_savings.dir/bench/fig3_dissemination_savings.cpp.o"
  "CMakeFiles/fig3_dissemination_savings.dir/bench/fig3_dissemination_savings.cpp.o.d"
  "bench/fig3_dissemination_savings"
  "bench/fig3_dissemination_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dissemination_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

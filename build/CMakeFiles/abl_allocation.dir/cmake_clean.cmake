file(REMOVE_RECURSE
  "CMakeFiles/abl_allocation.dir/bench/abl_allocation.cpp.o"
  "CMakeFiles/abl_allocation.dir/bench/abl_allocation.cpp.o.d"
  "bench/abl_allocation"
  "bench/abl_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

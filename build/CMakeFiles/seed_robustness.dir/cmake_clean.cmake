file(REMOVE_RECURSE
  "CMakeFiles/seed_robustness.dir/bench/seed_robustness.cpp.o"
  "CMakeFiles/seed_robustness.dir/bench/seed_robustness.cpp.o.d"
  "bench/seed_robustness"
  "bench/seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_dependency_histogram.cpp" "CMakeFiles/fig4_dependency_histogram.dir/bench/fig4_dependency_histogram.cpp.o" "gcc" "CMakeFiles/fig4_dependency_histogram.dir/bench/fig4_dependency_histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dissem/CMakeFiles/sds_dissem.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/sds_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig4_dependency_histogram.dir/bench/fig4_dependency_histogram.cpp.o"
  "CMakeFiles/fig4_dependency_histogram.dir/bench/fig4_dependency_histogram.cpp.o.d"
  "bench/fig4_dependency_histogram"
  "bench/fig4_dependency_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dependency_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

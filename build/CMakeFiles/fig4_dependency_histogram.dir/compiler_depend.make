# Empty compiler generated dependencies file for fig4_dependency_histogram.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_combined.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_combined.dir/bench/abl_combined.cpp.o"
  "CMakeFiles/abl_combined.dir/bench/abl_combined.cpp.o.d"
  "bench/abl_combined"
  "bench/abl_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

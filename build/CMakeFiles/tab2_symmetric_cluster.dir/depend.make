# Empty dependencies file for tab2_symmetric_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab2_symmetric_cluster.dir/bench/tab2_symmetric_cluster.cpp.o"
  "CMakeFiles/tab2_symmetric_cluster.dir/bench/tab2_symmetric_cluster.cpp.o.d"
  "bench/tab2_symmetric_cluster"
  "bench/tab2_symmetric_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_symmetric_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_speculation_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_speculation_baseline.dir/bench/fig5_speculation_baseline.cpp.o"
  "CMakeFiles/fig5_speculation_baseline.dir/bench/fig5_speculation_baseline.cpp.o.d"
  "bench/fig5_speculation_baseline"
  "bench/fig5_speculation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speculation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab1_document_classes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab1_document_classes.dir/bench/tab1_document_classes.cpp.o"
  "CMakeFiles/tab1_document_classes.dir/bench/tab1_document_classes.cpp.o.d"
  "bench/tab1_document_classes"
  "bench/tab1_document_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_document_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

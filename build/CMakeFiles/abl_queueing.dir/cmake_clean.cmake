file(REMOVE_RECURSE
  "CMakeFiles/abl_queueing.dir/bench/abl_queueing.cpp.o"
  "CMakeFiles/abl_queueing.dir/bench/abl_queueing.cpp.o.d"
  "bench/abl_queueing"
  "bench/abl_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

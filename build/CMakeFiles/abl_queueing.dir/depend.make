# Empty dependencies file for abl_queueing.
# This may be replaced when dependencies are built.

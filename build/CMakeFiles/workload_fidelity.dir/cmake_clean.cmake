file(REMOVE_RECURSE
  "CMakeFiles/workload_fidelity.dir/bench/workload_fidelity.cpp.o"
  "CMakeFiles/workload_fidelity.dir/bench/workload_fidelity.cpp.o.d"
  "bench/workload_fidelity"
  "bench/workload_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workload_fidelity.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp_client_caching.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_client_caching.dir/bench/exp_client_caching.cpp.o"
  "CMakeFiles/exp_client_caching.dir/bench/exp_client_caching.cpp.o.d"
  "bench/exp_client_caching"
  "bench/exp_client_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_client_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

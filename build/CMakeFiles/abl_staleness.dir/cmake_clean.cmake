file(REMOVE_RECURSE
  "CMakeFiles/abl_staleness.dir/bench/abl_staleness.cpp.o"
  "CMakeFiles/abl_staleness.dir/bench/abl_staleness.cpp.o.d"
  "bench/abl_staleness"
  "bench/abl_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

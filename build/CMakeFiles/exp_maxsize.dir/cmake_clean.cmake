file(REMOVE_RECURSE
  "CMakeFiles/exp_maxsize.dir/bench/exp_maxsize.cpp.o"
  "CMakeFiles/exp_maxsize.dir/bench/exp_maxsize.cpp.o.d"
  "bench/exp_maxsize"
  "bench/exp_maxsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_maxsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

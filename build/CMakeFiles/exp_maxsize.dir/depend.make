# Empty dependencies file for exp_maxsize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_prefetch_hybrid.dir/bench/exp_prefetch_hybrid.cpp.o"
  "CMakeFiles/exp_prefetch_hybrid.dir/bench/exp_prefetch_hybrid.cpp.o.d"
  "bench/exp_prefetch_hybrid"
  "bench/exp_prefetch_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_prefetch_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

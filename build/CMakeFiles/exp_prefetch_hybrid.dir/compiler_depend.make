# Empty compiler generated dependencies file for exp_prefetch_hybrid.
# This may be replaced when dependencies are built.

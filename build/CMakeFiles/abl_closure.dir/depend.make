# Empty dependencies file for abl_closure.
# This may be replaced when dependencies are built.

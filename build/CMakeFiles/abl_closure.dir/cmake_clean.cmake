file(REMOVE_RECURSE
  "CMakeFiles/abl_closure.dir/bench/abl_closure.cpp.o"
  "CMakeFiles/abl_closure.dir/bench/abl_closure.cpp.o.d"
  "bench/abl_closure"
  "bench/abl_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

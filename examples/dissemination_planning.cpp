/// \file
/// Dissemination planning for a cluster: a service proxy fronts several
/// home servers and must split its storage among them (Section 2.1-2.3).
/// Demonstrates the full protocol decision pipeline: per-server popularity
/// analysis -> λ fits -> closed-form optimal allocation (eq. 4/5 with KKT
/// clamping) -> comparison against equal-split and the non-parametric
/// greedy allocator -> proxy placement on the clientele tree.

#include <cstdio>

#include "core/workload.h"
#include "dissem/allocation.h"
#include "dissem/expfit.h"
#include "dissem/popularity.h"
#include "net/clientele_tree.h"
#include "net/placement.h"
#include "util/table.h"

int main() {
  using namespace sds;

  const uint32_t kServers = 6;
  const core::Workload workload =
      core::MakeWorkload(core::ClusterConfig(kServers));

  // Per-server demand parameters from the logs.
  const auto pops =
      dissem::AnalyzeAllServers(workload.corpus(), workload.clean());
  std::vector<dissem::ServerDemand> demands;
  Table servers({"server", "R (bytes/day)", "lambda", "R^2", "accessed"});
  for (const auto& pop : pops) {
    const auto fit =
        dissem::FitExponentialPopularity(pop, workload.corpus());
    demands.push_back({pop.remote_bytes_per_day, fit.lambda});
    servers.AddRow({std::to_string(pop.server),
                    FormatBytes(pop.remote_bytes_per_day),
                    FormatDouble(fit.lambda * 1e6, 3) + "e-6",
                    FormatDouble(fit.r_squared, 3),
                    std::to_string(pop.accessed_docs)});
  }
  std::printf("== per-server demand ==\n%s\n",
              servers.ToAlignedString().c_str());

  // Optimal storage split for a range of proxy sizes.
  const double corpus_bytes =
      static_cast<double>(workload.corpus().TotalBytes());
  Table plan({"proxy storage", "allocation per server", "alpha (model)",
              "alpha (greedy empirical)"});
  for (const double fraction : {0.05, 0.10, 0.20, 0.40}) {
    const double budget = fraction * corpus_bytes;
    const auto alloc = dissem::AllocateExponential(demands, budget);
    std::string split;
    for (size_t i = 0; i < alloc.size(); ++i) {
      if (i != 0) split += " / ";
      split += FormatBytes(alloc[i]);
    }
    const auto greedy = dissem::AllocateGreedyEmpirical(
        pops, workload.corpus(), budget);
    plan.AddRow({FormatBytes(budget), split,
                 FormatPercent(dissem::HitFraction(demands, alloc), 1),
                 FormatPercent(greedy.hit_fraction, 1)});
  }
  std::printf("== storage plans ==\n%s\n", plan.ToAlignedString().c_str());

  // Where should the proxy sit? Build server 0's clientele tree and
  // compare placement strategies.
  const net::ClienteleTree tree =
      net::BuildClienteleTree(workload.topology(), workload.clean(), 0);
  std::printf("== proxy placement for server 0 ==\n");
  std::printf("clientele tree: %zu leaf subnets, %zu candidate sites, %s "
              "remote traffic\n",
              tree.leaves.size(), tree.interior_nodes.size(),
              FormatBytes(static_cast<double>(tree.total_bytes)).c_str());
  Table placement({"strategy", "k", "saved bytes x hops"});
  Rng rng(1);
  for (const uint32_t k : {1u, 2u, 4u}) {
    placement.AddRow(
        {"greedy (ours)", std::to_string(k),
         FormatPercent(net::GreedyPlacement(tree, k, 1.0).saved_fraction, 1)});
    placement.AddRow(
        {"regional (Gwertzman-Seltzer)", std::to_string(k),
         FormatPercent(
             net::RegionalPlacement(workload.topology(), tree, k, 1.0)
                 .saved_fraction,
             1)});
    placement.AddRow(
        {"random", std::to_string(k),
         FormatPercent(net::RandomPlacement(tree, k, 1.0, &rng).saved_fraction,
                       1)});
  }
  std::printf("%s", placement.ToAlignedString().c_str());
  return 0;
}

/// \file
/// Tuning a speculative server (Section 3): given a traffic budget, find
/// the speculation threshold T_p and MaxSize that maximise the server-load
/// reduction, then show what cooperative clients add. This is the workflow
/// an operator deploying the protocol would run against their own logs.

#include <cstdio>
#include <vector>

#include "core/experiments.h"
#include "core/workload.h"
#include "spec/simulator.h"
#include "util/table.h"

int main() {
  using namespace sds;

  const core::Workload workload =
      core::MakeWorkload(core::PaperScaleConfig());
  spec::SpeculationSimulator sim(&workload.corpus(), &workload.clean());

  const double traffic_budget = 0.10;  // willing to spend 10% extra bytes
  std::printf("tuning for a %.0f%% extra-traffic budget over %zu accesses\n\n",
              traffic_budget * 100.0, workload.clean().size());

  // Sweep (Tp, MaxSize) and keep configurations within budget.
  spec::SpeculationConfig base = core::BaselineSpecConfig();
  Table sweep({"Tp", "MaxSize", "extra_traffic", "load_reduction",
               "time_reduction", "within_budget"});
  double best_reduction = 0.0;
  spec::SpeculationConfig best = base;
  for (const double tp : {0.6, 0.4, 0.3, 0.2, 0.1}) {
    for (const uint64_t max_size :
         {uint64_t{8} * 1024, uint64_t{29} * 1024, uint64_t{0}}) {
      spec::SpeculationConfig config = base;
      config.policy.threshold = tp;
      config.policy.max_size = max_size;
      const auto m = sim.Evaluate(config);
      const bool ok = m.extra_traffic <= traffic_budget;
      if (ok && 1.0 - m.server_load_ratio > best_reduction) {
        best_reduction = 1.0 - m.server_load_ratio;
        best = config;
      }
      sweep.AddRow({FormatDouble(tp, 2),
                    max_size == 0
                        ? "unlimited"
                        : FormatBytes(static_cast<double>(max_size)),
                    FormatPercent(m.extra_traffic, 1),
                    FormatPercent(1.0 - m.server_load_ratio, 1),
                    FormatPercent(1.0 - m.service_time_ratio, 1),
                    ok ? "yes" : "no"});
    }
  }
  std::printf("%s\n", sweep.ToAlignedString().c_str());
  std::printf("best within budget: Tp = %.2f, MaxSize = %s -> %s load cut\n\n",
              best.policy.threshold,
              best.policy.max_size == 0
                  ? "unlimited"
                  : FormatBytes(static_cast<double>(best.policy.max_size))
                        .c_str(),
              FormatPercent(best_reduction, 1).c_str());

  // What do cooperative clients add on top of the tuned configuration?
  const auto blind = sim.Evaluate(best);
  best.cooperative_clients = true;
  const auto coop = sim.Evaluate(best);
  std::printf("== cooperative clients on the tuned config ==\n");
  std::printf("extra traffic:  %s -> %s\n",
              FormatPercent(blind.extra_traffic, 1).c_str(),
              FormatPercent(coop.extra_traffic, 1).c_str());
  std::printf("wasted pushes:  %s -> %s\n",
              FormatBytes(blind.with_speculation.wasted_speculative_bytes)
                  .c_str(),
              FormatBytes(coop.with_speculation.wasted_speculative_bytes)
                  .c_str());
  std::printf("load reduction: %s -> %s\n",
              FormatPercent(1.0 - blind.server_load_ratio, 1).c_str(),
              FormatPercent(1.0 - coop.server_load_ratio, 1).c_str());
  return 0;
}

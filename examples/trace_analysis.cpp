/// \file
/// Trace analysis walkthrough: the server-side log analyses of Section 2 —
/// popularity profile, block popularity (Figure 1), document classification
/// (remote / local / global, mutable) and the exponential λ fit — exactly
/// the pipeline a server would run periodically to decide what to
/// disseminate. Writes the per-block curve to fig1_blocks.csv.

#include <cstdio>

#include "core/workload.h"
#include "dissem/classify.h"
#include "dissem/expfit.h"
#include "dissem/popularity.h"
#include "trace/sessionizer.h"
#include "util/table.h"

int main() {
  using namespace sds;

  const core::Workload workload =
      core::MakeWorkload(core::PaperScaleConfig());
  const auto& corpus = workload.corpus();
  const auto& trace = workload.clean();

  std::printf("analyzing %zu accesses over %.0f days (%llu sessions)\n\n",
              trace.size(), trace.Span() / kDay,
              static_cast<unsigned long long>(
                  trace::CountSegments(trace, 30 * kMinute)));

  // 1. Popularity profile of the home server.
  const dissem::ServerPopularity pop = dissem::AnalyzeServer(corpus, trace, 0);
  std::printf("== popularity ==\n");
  std::printf("remote requests: %llu (%s)\n",
              static_cast<unsigned long long>(pop.total_remote_requests),
              FormatBytes(static_cast<double>(pop.total_remote_bytes)).c_str());
  std::printf("accessed documents: %u of %zu\n", pop.accessed_docs,
              corpus.server_docs(0).size());
  std::printf("R (remote bytes/day): %s\n\n",
              FormatBytes(pop.remote_bytes_per_day).c_str());

  // 2. Figure-1-style block curve, written as CSV for plotting.
  const auto blocks =
      dissem::ComputeBlockPopularity(pop, corpus, 256 * 1024);
  Table csv({"block", "request_fraction", "cumulative_requests",
             "cumulative_bytes"});
  for (size_t i = 0; i < blocks.request_fraction.size(); ++i) {
    csv.AddRow({std::to_string(i + 1),
                FormatDouble(blocks.request_fraction[i], 6),
                FormatDouble(blocks.cumulative_requests[i], 6),
                FormatDouble(blocks.cumulative_bytes[i], 6)});
  }
  const Status io = csv.WriteCsv("fig1_blocks.csv");
  std::printf("== block popularity (256 KB blocks) ==\n");
  std::printf("top block: %s of remote requests\n",
              FormatPercent(blocks.request_fraction.empty()
                                ? 0.0
                                : blocks.request_fraction[0],
                            1)
                  .c_str());
  std::printf("CSV: %s\n\n",
              io.ok() ? "written to fig1_blocks.csv" : io.ToString().c_str());

  // 3. Exponential popularity model fit (Section 2.2).
  const auto fit = dissem::FitExponentialPopularity(pop, corpus);
  std::printf("== exponential model ==\n");
  std::printf("lambda = %.4g per byte (R^2 = %.3f over %u points)\n",
              fit.lambda, fit.r_squared, fit.points);
  const dissem::ExponentialModel model{fit.lambda};
  std::printf("model says %s of storage shields 90%% of requests\n\n",
              FormatBytes(model.BytesForHitFraction(0.90)).c_str());

  // 4. Classification (Section 2): popularity classes + mutability.
  const auto pops = dissem::AnalyzeAllServers(corpus, trace);
  const uint32_t days = static_cast<uint32_t>(trace.Span() / kDay) + 1;
  const auto classes = dissem::ClassifyDocuments(
      corpus, pops, workload.generated().updates, days);
  std::printf("== classification ==\n");
  std::printf("remotely popular: %u\n", classes.remotely_popular);
  std::printf("locally popular:  %u (mean %.3f updates/day)\n",
              classes.locally_popular,
              classes.MeanUpdateRate(dissem::PopularityClass::kLocallyPopular));
  std::printf("globally popular: %u\n", classes.globally_popular);
  std::printf("mutable:          %u (these should not be disseminated)\n",
              classes.mutable_docs);
  return 0;
}

/// \file
/// Quickstart: synthesize a small web workload, then run both of the
/// paper's protocols — popularity-based data dissemination and speculative
/// service — and print their headline numbers.

#include <cstdio>

#include "core/experiments.h"
#include "core/workload.h"
#include "dissem/expfit.h"
#include "dissem/popularity.h"
#include "dissem/simulator.h"
#include "spec/simulator.h"
#include "trace/sessionizer.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace sds;

  // 1. Synthesize a workload: corpus + link graph + 14-day trace + topology.
  const core::WorkloadConfig config = core::SmallConfig();
  const core::Workload workload = core::MakeWorkload(config);

  std::printf("== workload ==\n");
  std::printf("documents:        %zu (%s)\n", workload.corpus().size(),
              FormatBytes(static_cast<double>(workload.corpus().TotalBytes()))
                  .c_str());
  std::printf("raw accesses:     %zu\n", workload.generated().trace.size());
  std::printf("clean accesses:   %zu (dropped %llu 404s, %llu scripts)\n",
              workload.clean().size(),
              static_cast<unsigned long long>(
                  workload.filter_stats().dropped_not_found),
              static_cast<unsigned long long>(
                  workload.filter_stats().dropped_script));
  std::printf("sessions:         %llu\n",
              static_cast<unsigned long long>(
                  trace::CountSegments(workload.clean(), 30.0 * kMinute)));

  // 2. Dissemination protocol: popularity skew, fitted lambda, savings.
  const auto pop =
      dissem::AnalyzeServer(workload.corpus(), workload.clean(), 0);
  const auto fit =
      dissem::FitExponentialPopularity(pop, workload.corpus());
  std::printf("\n== dissemination protocol ==\n");
  std::printf("remote requests:  %llu\n",
              static_cast<unsigned long long>(pop.total_remote_requests));
  std::printf("H(top 10%% bytes): %.1f%% of remote requests\n",
              100.0 * pop.EmpiricalH(0.10 * workload.corpus().ServerBytes(0),
                                     workload.corpus()));
  std::printf("fitted lambda:    %.3g per byte (R^2 = %.3f)\n", fit.lambda,
              fit.r_squared);

  Rng rng(7);
  dissem::DisseminationConfig dconfig;
  dconfig.dissemination_fraction = 0.10;
  dconfig.num_proxies = 4;
  const auto dresult = SimulateDissemination(
      workload.corpus(), workload.clean(), workload.topology(), 0, dconfig,
      &rng, &workload.generated().updates);
  std::printf(
      "4 proxies, top 10%% disseminated: %.1f%% of bytes x hops saved, "
      "%.1f%% of requests intercepted\n",
      100.0 * dresult.saved_fraction, 100.0 * dresult.proxy_hit_fraction);

  // 3. Speculative service at the paper's baseline parameters.
  spec::SpeculationSimulator sim(&workload.corpus(), &workload.clean());
  spec::SpeculationConfig sconfig = core::BaselineSpecConfig();
  sconfig.policy.threshold = 0.25;
  const auto metrics = sim.Evaluate(sconfig);
  std::printf("\n== speculative service (Tp = 0.25) ==\n");
  std::printf("extra traffic:    %+.1f%%\n", 100.0 * metrics.extra_traffic);
  std::printf("server load:      %.1f%% reduction\n",
              100.0 * (1.0 - metrics.server_load_ratio));
  std::printf("service time:     %.1f%% reduction\n",
              100.0 * (1.0 - metrics.service_time_ratio));
  std::printf("client miss rate: %.1f%% reduction\n",
              100.0 * (1.0 - metrics.miss_rate_ratio));
  return 0;
}

/// \file
/// Replaying a real server log: exports the synthetic workload as an NCSA
/// Common Log Format file, then reads it back and runs the speculative-
/// service simulation on the parsed log — the exact path a user with their
/// own 1995-style httpd logs would follow to evaluate the protocols on
/// their site.

#include <cstdio>

#include "core/experiments.h"
#include "core/workload.h"
#include "spec/simulator.h"
#include "trace/clf.h"
#include "trace/filter.h"

int main() {
  using namespace sds;

  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const std::string path = "access_log.clf";

  // 1. Export the raw trace as a CLF access log.
  const Status wrote =
      trace::WriteClfFile(path, workload.generated().trace, workload.corpus());
  if (!wrote.ok()) {
    std::fprintf(stderr, "write failed: %s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu CLF lines to %s\n",
              workload.generated().trace.size(), path.c_str());

  // 2. Read it back, as if it were a real log.
  const auto read = trace::ReadClfFile(path, workload.corpus());
  if (!read.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 read.status().ToString().c_str());
    return 1;
  }

  // 3. Preprocess exactly as the paper did (drop 404s/scripts, rename
  //    aliases) and simulate.
  trace::FilterStats stats;
  const trace::Trace clean = trace::FilterTrace(read.value(), &stats);
  std::printf("parsed %zu records; kept %llu after preprocessing "
              "(%llu 404s, %llu scripts dropped, %llu aliases renamed)\n",
              read.value().size(),
              static_cast<unsigned long long>(stats.kept),
              static_cast<unsigned long long>(stats.dropped_not_found),
              static_cast<unsigned long long>(stats.dropped_script),
              static_cast<unsigned long long>(stats.canonicalized_alias));

  spec::SpeculationSimulator sim(&workload.corpus(), &clean);
  spec::SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  const auto metrics = sim.Evaluate(config);
  std::printf("\nspeculative service on the replayed log (Tp = 0.25):\n");
  std::printf("  extra traffic    %+.1f%%\n", 100.0 * metrics.extra_traffic);
  std::printf("  server load      %.1f%% reduction\n",
              100.0 * (1.0 - metrics.server_load_ratio));
  std::printf("  service time     %.1f%% reduction\n",
              100.0 * (1.0 - metrics.service_time_ratio));
  std::printf("  client miss rate %.1f%% reduction\n",
              100.0 * (1.0 - metrics.miss_rate_ratio));
  std::remove(path.c_str());
  return 0;
}

/// \file
/// sdsim — command-line driver for the library: synthesize (or load) a
/// workload, run either protocol with the parameters given on the command
/// line, and print the metrics. The one-stop tool for exploring the
/// parameter space without writing code.
///
/// Usage:
///   sdsim [--scale=small|paper] [--seed=N] [--protocol=speculation|
///          dissemination|both]
///         [--tp=0.25] [--maxsize=BYTES] [--session-timeout=SECONDS]
///         [--cooperative] [--mode=push|hints|client|hybrid]
///         [--proxies=4] [--fraction=0.10] [--clf=access_log]
///
/// Examples:
///   sdsim --protocol=speculation --tp=0.1 --maxsize=29696
///   sdsim --protocol=dissemination --proxies=8 --fraction=0.04
///   sdsim --scale=paper --protocol=both --cooperative

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/experiments.h"
#include "core/workload.h"
#include "dissem/simulator.h"
#include "spec/simulator.h"
#include "trace/clf.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace sds;

/// Minimal --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (!StartsWith(arg, "--")) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        ok_ = false;
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second).value_or(fallback);
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second).value_or(fallback);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int RunSpeculation(const core::Workload& workload, const trace::Trace& trace,
                   const Args& args) {
  spec::SpeculationSimulator sim(&workload.corpus(), &trace);
  spec::SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = args.GetDouble("tp", 0.25);
  config.policy.max_size =
      static_cast<uint64_t>(args.GetInt("maxsize", 0));
  if (args.Has("session-timeout")) {
    config.cache.session_timeout = args.GetDouble("session-timeout", 0.0);
  }
  config.cooperative_clients = args.Has("cooperative");
  const std::string mode = args.Get("mode", "push");
  if (mode == "hints") {
    config.mode = spec::ServiceMode::kServerHints;
  } else if (mode == "client") {
    config.mode = spec::ServiceMode::kClientPrefetch;
  } else if (mode == "hybrid") {
    config.mode = spec::ServiceMode::kHybrid;
  }

  const auto m = sim.Evaluate(config);
  std::printf("speculative service (%s, Tp=%.2f%s%s)\n",
              spec::ServiceModeToString(config.mode),
              config.policy.threshold,
              config.policy.max_size > 0 ? ", MaxSize set" : "",
              config.cooperative_clients ? ", cooperative" : "");
  Table table({"metric", "value"});
  table.AddRow({"extra traffic", FormatPercent(m.extra_traffic, 1)});
  table.AddRow({"server load reduction",
                FormatPercent(1.0 - m.server_load_ratio, 1)});
  table.AddRow({"service time reduction",
                FormatPercent(1.0 - m.service_time_ratio, 1)});
  table.AddRow({"miss rate reduction",
                FormatPercent(1.0 - m.miss_rate_ratio, 1)});
  table.AddRow({"speculative pushes",
                std::to_string(m.with_speculation.speculative_docs_sent)});
  table.AddRow(
      {"wasted bytes",
       FormatBytes(m.with_speculation.wasted_speculative_bytes)});
  std::printf("%s\n", table.ToAlignedString().c_str());
  return 0;
}

int RunDissemination(const core::Workload& workload,
                     const trace::Trace& trace, const Args& args) {
  dissem::DisseminationConfig config;
  config.num_proxies = static_cast<uint32_t>(args.GetInt("proxies", 4));
  config.dissemination_fraction = args.GetDouble("fraction", 0.10);
  config.exclude_mutable = args.Has("exclude-mutable");
  config.tailored_per_proxy = args.Has("tailored");
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)) + 1);
  const auto result = SimulateDissemination(
      workload.corpus(), trace, workload.topology(), 0, config, &rng,
      &workload.generated().updates);

  std::printf("dissemination (%u proxies, top %s of bytes%s)\n",
              config.num_proxies,
              FormatPercent(config.dissemination_fraction, 0).c_str(),
              config.exclude_mutable ? ", immutable only" : "");
  Table table({"metric", "value"});
  table.AddRow({"bytes x hops saved",
                FormatPercent(result.saved_fraction, 1)});
  table.AddRow({"requests intercepted",
                FormatPercent(result.proxy_hit_fraction, 1)});
  table.AddRow({"storage per proxy",
                FormatBytes(static_cast<double>(
                    result.storage_per_proxy_bytes))});
  table.AddRow({"stale proxy serves",
                FormatPercent(result.stale_fraction, 2)});
  std::printf("%s\n", table.ToAlignedString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (!args.ok() || args.Has("help")) {
    std::fprintf(stderr,
                 "usage: sdsim [--scale=small|paper] [--seed=N]\n"
                 "  [--protocol=speculation|dissemination|both]\n"
                 "  [--tp=P] [--maxsize=BYTES] [--session-timeout=SECS]\n"
                 "  [--cooperative] [--mode=push|hints|client|hybrid]\n"
                 "  [--proxies=K] [--fraction=F] [--exclude-mutable]\n"
                 "  [--tailored] [--clf=FILE]\n");
    return args.Has("help") ? 0 : 2;
  }

  core::WorkloadConfig config = args.Get("scale", "small") == "paper"
                                    ? core::PaperScaleConfig()
                                    : core::SmallConfig();
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const core::Workload workload = core::MakeWorkload(config);

  // Optionally replace the synthetic trace with a parsed CLF log.
  trace::Trace replay = workload.clean();
  if (args.Has("clf")) {
    const auto parsed =
        trace::ReadClfFile(args.Get("clf", ""), workload.corpus());
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot read CLF log: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    replay = FilterTrace(parsed.value());
  }

  std::printf("workload: %zu docs, %zu accesses, seed %llu\n\n",
              workload.corpus().size(), replay.size(),
              static_cast<unsigned long long>(config.seed));

  const std::string protocol = args.Get("protocol", "both");
  int rc = 0;
  if (protocol == "speculation" || protocol == "both") {
    rc |= RunSpeculation(workload, replay, args);
  }
  if (protocol == "dissemination" || protocol == "both") {
    rc |= RunDissemination(workload, replay, args);
  }
  if (protocol != "speculation" && protocol != "dissemination" &&
      protocol != "both") {
    std::fprintf(stderr, "unknown --protocol=%s\n", protocol.c_str());
    return 2;
  }
  return rc;
}

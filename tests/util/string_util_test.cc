#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(SplitStringTest, Basic) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitStringTest, NoDelimiter) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, Empty) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, Variants) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("\t\n x y \r"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ToLowerAsciiTest, Basic) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13  ").value(), 13);
}

TEST(ParseInt64Test, Rejections) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
}

TEST(ParseDoubleTest, Rejections) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("3.5kg").ok());
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace sds

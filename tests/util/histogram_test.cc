#include "util/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.num_bins(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
}

TEST(HistogramTest, AddRoutesToCorrectBin) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.26);
  h.Add(0.26);
  h.Add(0.99);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, UnderflowOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);
  h.Add(1.0);  // hi is inclusive: lands in the last bin, not overflow
  h.Add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(HistogramTest, TopEdgeCountsInLastBin) {
  // Regression: value == hi used to be routed to overflow, which dropped
  // the p = 1 embedding-dependency peak from the Figure 4 histogram.
  Histogram h(0.0, 1.0, 40);
  h.Add(1.0, 7.0);
  EXPECT_DOUBLE_EQ(h.count(h.num_bins() - 1), 7.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  // The edge itself is the only value that folds down; anything above
  // still overflows, and NaN never lands in a bin.
  h.Add(1.0 + 1e-12);
  h.Add(std::nan(""));
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.count(h.num_bins() - 1), 7.0);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.5, 3.0);
  EXPECT_DOUBLE_EQ(h.count(5), 3.0);
}

TEST(HistogramTest, ArgMax) {
  Histogram h(0.0, 1.0, 5);
  h.Add(0.5, 10.0);
  h.Add(0.1, 2.0);
  EXPECT_EQ(h.ArgMaxBin(), 2u);
}

TEST(HistogramTest, PeakBinsFindsLocalMaxima) {
  Histogram h(0.0, 1.0, 7);
  // Counts: 0, 5, 0, 0, 8, 2, 0 -> peaks at bins 1 and 4.
  h.Add(0.15, 5.0);
  h.Add(0.60, 8.0);
  h.Add(0.75, 2.0);
  const auto peaks = h.PeakBins(3.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1u);
  EXPECT_EQ(peaks[1], 4u);
}

TEST(HistogramTest, PeakBinsRespectsMinCount) {
  Histogram h(0.0, 1.0, 3);
  h.Add(0.5, 2.0);
  EXPECT_TRUE(h.PeakBins(5.0).empty());
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25, 4.0);
  const std::string out = h.Render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace sds

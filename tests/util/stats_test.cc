#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(FitLinearTest, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, NoisyLineDecentR2) {
  Rng rng(2);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 5.0 + (rng.NextDouble() - 0.5) * 20.0);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinearWeightedTest, ZeroWeightPointsIgnored) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 100.0};
  const std::vector<double> y = {0.0, 1.0, 2.0, -500.0};
  const std::vector<double> w = {1.0, 1.0, 1.0, 0.0};
  const LinearFit fit = FitLinearWeighted(x, y, w);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-9);
}

TEST(PearsonTest, SignAndMagnitude) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, up), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation(x, down), -1.0, 1e-9);
}

TEST(GiniTest, UniformIsZero) {
  EXPECT_NEAR(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(GiniTest, ConcentratedApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_GT(GiniCoefficient(v), 0.95);
}

TEST(GiniTest, KnownValue) {
  // For {0, 1}: G = 0.5.
  EXPECT_NEAR(GiniCoefficient({0.0, 1.0}), 0.5, 1e-12);
}

}  // namespace
}  // namespace sds

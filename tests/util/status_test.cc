#include "util/status.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kParseError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Chain(int x, int* out) {
  SDS_RETURN_IF_ERROR(FailIfNegative(x));
  SDS_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  int out = 0;
  EXPECT_EQ(helpers::Chain(-2, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(helpers::Chain(3, &out).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(helpers::Chain(8, &out).ok());
  EXPECT_EQ(out, 4);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH((void)r.value(), "boom");
}

}  // namespace
}  // namespace sds

#include "util/distributions.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace sds {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  for (const double s : {0.6, 1.0, 1.4}) {
    const ZipfDistribution zipf(500, s);
    double sum = 0.0;
    for (uint64_t r = 0; r < 500; ++r) sum += zipf.Pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(ZipfTest, PmfIsDecreasing) {
  const ZipfDistribution zipf(100, 1.2);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_LT(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, SingleElement) {
  const ZipfDistribution zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 1.0);
}

/// Property sweep: empirical frequencies of sampled ranks must match the
/// analytic PMF across n and s.
class ZipfSampleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfSampleTest, EmpiricalMatchesPmf) {
  const auto [n, s] = GetParam();
  const ZipfDistribution zipf(n, s);
  Rng rng(123);
  std::vector<double> counts(std::min<uint64_t>(n, 16), 0.0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    ASSERT_LT(r, n);
    if (r < counts.size()) counts[r] += 1.0;
  }
  for (size_t r = 0; r < counts.size(); ++r) {
    const double expected = zipf.Pmf(r) * samples;
    if (expected < 100) continue;  // too rare to test tightly
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected))
        << "rank " << r << " n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfSampleTest,
    ::testing::Combine(::testing::Values(10ull, 1000ull, 100000ull),
                       ::testing::Values(0.8, 1.0, 1.3)));

TEST(LognormalTest, MedianAndMean) {
  const LognormalDistribution dist(std::log(100.0), 0.5);
  EXPECT_NEAR(dist.Median(), 100.0, 1e-9);
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(dist.Sample(&rng));
  EXPECT_NEAR(stats.mean(), dist.Mean(), dist.Mean() * 0.02);
}

TEST(LognormalTest, ZeroSigmaIsConstant) {
  const LognormalDistribution dist(std::log(42.0), 0.0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(dist.Sample(&rng), 42.0, 1e-9);
  }
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  const BoundedParetoDistribution dist(1.1, 10.0, 1000.0);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.Sample(&rng);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(BoundedParetoTest, EmpiricalMeanMatchesAnalytic) {
  const BoundedParetoDistribution dist(1.5, 1.0, 100.0);
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.Add(dist.Sample(&rng));
  EXPECT_NEAR(stats.mean(), dist.Mean(), dist.Mean() * 0.03);
}

TEST(ExponentialTest, MeanMatches) {
  const ExponentialDistribution dist(0.25);
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(dist.Sample(&rng));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(GeometricTest, MeanAndSupport) {
  const GeometricDistribution dist(0.25);
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t x = dist.Sample(&rng);
    EXPECT_GE(x, 1u);
    stats.Add(static_cast<double>(x));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(GeometricTest, POneAlwaysOne) {
  const GeometricDistribution dist(1.0);
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(&rng), 1u);
}

TEST(StandardNormalTest, MeanZeroVarOne) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(SampleStandardNormal(&rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(SampleDiscreteTest, RespectsWeights) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[SampleDiscrete(weights, &rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Rng rng(15);
  const std::vector<double> weights = {5.0, 1.0, 0.0, 4.0};
  const DiscreteSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.01);
}

TEST(DiscreteSamplerTest, SingleBucket) {
  Rng rng(16);
  const DiscreteSampler sampler({2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

}  // namespace
}  // namespace sds

#include "util/table.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(TableTest, Dimensions) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(TableTest, AlignedOutputContainsHeaderAndRule) {
  Table t({"name", "value"});
  t.AddRow({"x", "10"});
  const std::string out = t.ToAlignedString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"a"});
  t.AddRow({"plain"});
  t.AddRow({"with,comma"});
  t.AddRow({"with\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.AddRow({"x", "1"});
  const std::string path = ::testing::TempDir() + "/sds_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "k,v");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,1");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvBadPathFails) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir-xyz/file.csv").ok());
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.235, 1), "23.5%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(36.5 * 1024 * 1024), "36.5 MB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024 * 1024), "3.0 GB");
}

}  // namespace
}  // namespace sds

#include "util/json.h"

#include <string>

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"

namespace sds {
namespace {

JsonValue Parse(const std::string& text) {
  Result<JsonValue> result = ParseJson(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value() : JsonValue();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_TRUE(Parse("true").AsBool());
  EXPECT_FALSE(Parse("false").AsBool(true));
  EXPECT_DOUBLE_EQ(Parse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-0.5").AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(Parse("1e3").AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("2.5E-2").AsNumber(), 0.025);
  EXPECT_EQ(Parse("\"hello\"").AsString(), "hello");
}

TEST(JsonTest, ParsesContainers) {
  const JsonValue array = Parse("[1, \"two\", [3], {\"k\": 4}, null]");
  ASSERT_TRUE(array.is_array());
  ASSERT_EQ(array.items().size(), 5u);
  EXPECT_DOUBLE_EQ(array.items()[0].AsNumber(), 1.0);
  EXPECT_EQ(array.items()[1].AsString(), "two");
  EXPECT_DOUBLE_EQ(array.items()[2].items()[0].AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(array.items()[3].Find("k")->AsNumber(), 4.0);
  EXPECT_TRUE(array.items()[4].is_null());

  const JsonValue object = Parse("{\"a\": {\"b\": {\"c\": 7}}, \"d\": []}");
  ASSERT_TRUE(object.is_object());
  EXPECT_EQ(object.members().size(), 2u);
  const JsonValue* c = object.FindPath({"a", "b", "c"});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->AsNumber(), 7.0);
  EXPECT_EQ(object.FindPath({"a", "missing", "c"}), nullptr);
  EXPECT_EQ(object.Find("missing"), nullptr);
  // Find on a non-object is a safe nullptr, not an error.
  EXPECT_EQ(Parse("[1]").Find("a"), nullptr);
}

TEST(JsonTest, EmptyContainersAndWhitespace) {
  EXPECT_TRUE(Parse(" \t\n{ } ").is_object());
  EXPECT_TRUE(Parse("[]").is_array());
  EXPECT_EQ(Parse("{}").members().size(), 0u);
  EXPECT_EQ(Parse("[ ]").items().size(), 0u);
}

TEST(JsonTest, DecodesEscapes) {
  EXPECT_EQ(Parse("\"a\\\"b\\\\c\\/d\"").AsString(), "a\"b\\c/d");
  EXPECT_EQ(Parse("\"\\b\\f\\n\\r\\t\"").AsString(), "\b\f\n\r\t");
  EXPECT_EQ(Parse("\"\\u0041\\u00e9\"").AsString(), "A\xC3\xA9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(Parse("\"\\uD83D\\uDE00\"").AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RoundTripsJsonEscape) {
  // Whatever our own escaper emits, our parser must decode back. (Bytes
  // >= 0x80 are escaped Latin-1-wise and decode to UTF-8, so only ASCII
  // round-trips to the identical byte string.)
  const std::string hostile = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  const std::string document = "{\"" + JsonEscape(hostile) + "\": 1}";
  const JsonValue parsed = Parse(document);
  ASSERT_TRUE(parsed.is_object());
  ASSERT_EQ(parsed.members().size(), 1u);
  EXPECT_EQ(parsed.members().begin()->first, hostile);
}

TEST(JsonTest, DuplicateKeysKeepLastValue) {
  const JsonValue v = Parse("{\"k\": 1, \"k\": 2}");
  EXPECT_DOUBLE_EQ(v.Find("k")->AsNumber(), 2.0);
  EXPECT_EQ(v.members().size(), 1u);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",         "[1,]",     "{\"a\" 1}",  "{\"a\": }",
      "tru",        "nul",       "\"unterminated", "\"bad\\q\"",
      "\"\\u12\"",  "{\"a\": 1} extra", "[1] 2", "'single'",
      "\"raw\ncontrol\"",
  };
  for (const char* text : bad) {
    const Result<JsonValue> result = ParseJson(text);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
      // Errors locate the problem by byte offset.
      EXPECT_NE(result.status().message().find("offset"), std::string::npos)
          << text;
    }
  }
}

TEST(JsonTest, LoneSurrogateIsToleratedAsIs) {
  // A lone high surrogate is not chained into a pair; the parser keeps it
  // (encoded as a 3-byte sequence) instead of failing the document.
  const Result<JsonValue> result = ParseJson("\"\\uD83Dx\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().AsString().back(), 'x');
}

TEST(JsonTest, ParseJsonFileReportsMissingFile) {
  const Result<JsonValue> result =
      ParseJsonFile("/nonexistent/sds_json_test.json");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("/nonexistent/sds_json_test.json"),
            std::string::npos);
}

TEST(JsonTest, ParseJsonFileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/sds_json_test_roundtrip.json";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("{\"ok\": [true, 1.5]}", f);
    fclose(f);
  }
  const Result<JsonValue> result = ParseJsonFile(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().FindPath({"ok"})->items()[0].AsBool());
  remove(path.c_str());
}

}  // namespace
}  // namespace sds

#include "util/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.Fork();
  // The fork and the parent should not produce identical sequences.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(Rng::Mix(123), Rng::Mix(123));
  EXPECT_NE(Rng::Mix(1), Rng::Mix(2));
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace sds

#include "util/ascii_chart.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(AsciiChartTest, EmptyChart) {
  AsciiChart chart;
  EXPECT_EQ(chart.Render(), "(empty chart)\n");
}

TEST(AsciiChartTest, SingleSeriesRenders) {
  AsciiChart chart(40, 10);
  chart.AddSeries("line", {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0});
  const std::string out = chart.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("line"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(AsciiChartTest, MultipleSeriesDistinctGlyphs) {
  AsciiChart chart(40, 10);
  chart.AddSeries("a", {0.0, 1.0}, {0.0, 0.0});
  chart.AddSeries("b", {0.0, 1.0}, {1.0, 1.0});
  const std::string out = chart.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiChartTest, FixedYRangeClipsOutliers) {
  AsciiChart chart(40, 10);
  chart.SetYRange(0.0, 1.0);
  chart.AddSeries("s", {0.0, 1.0, 2.0}, {0.5, 5.0, -3.0});
  // Should not crash; out-of-range points are simply dropped.
  const std::string out = chart.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(40, 10);
  chart.AddSeries("flat", {1.0, 1.0}, {2.0, 2.0});
  EXPECT_FALSE(chart.Render().empty());
}

}  // namespace
}  // namespace sds

#include "util/logging.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/sim_time.h"

namespace sds {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, BelowLevelMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The streamed expression must not be evaluated when filtered... the
  // macro swallows the stream but still evaluates operands; what matters
  // is that it does not crash and does not abort.
  SDS_LOG(Debug) << "invisible " << 42;
  SDS_LOG(Info) << "also invisible";
  SetLogLevel(before);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SDS_LOG(Fatal) << "boom", "boom");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SDS_CHECK(1 == 2) << "math broke", "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckSuccessIsNoop) {
  SDS_CHECK(true) << "never printed";
}

TEST(SimTimeTest, Constants) {
  EXPECT_DOUBLE_EQ(kMinute, 60.0);
  EXPECT_DOUBLE_EQ(kHour, 3600.0);
  EXPECT_DOUBLE_EQ(kDay, 86400.0);
  EXPECT_DOUBLE_EQ(kWeek, 7 * 86400.0);
  EXPECT_TRUE(std::isinf(kInfiniteTime));
}

TEST(SimTimeTest, DayOfTimeAndTimeOfDay) {
  EXPECT_EQ(DayOfTime(0.0), 0);
  EXPECT_EQ(DayOfTime(86399.0), 0);
  EXPECT_EQ(DayOfTime(86400.0), 1);
  EXPECT_EQ(DayOfTime(10 * kDay + 5.0), 10);
  EXPECT_DOUBLE_EQ(TimeOfDay(3 * kDay + 4321.0), 4321.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(0.5), 0.5);
}

TEST(SimTimeTest, NegativeTimesUseFloorSemantics) {
  // Regression: truncation toward zero mapped all of (-86400, 0) to day 0.
  EXPECT_EQ(DayOfTime(-1.0), -1);
  EXPECT_EQ(DayOfTime(-86400.0), -1);
  EXPECT_EQ(DayOfTime(-86401.0), -2);
  EXPECT_DOUBLE_EQ(TimeOfDay(-1.0), 86399.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(-kDay), 0.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(-kDay - 1.0), 86399.0);
}

TEST(SimTimeTest, TimeOfDayStaysInRangeAtBoundaries) {
  // fp-hostile times near day boundaries: the documented range [0, kDay)
  // must hold exactly, including when t/kDay rounds across a day edge.
  const SimTime probes[] = {
      0.0,
      -0.0,
      std::nextafter(kDay, 0.0),
      kDay,
      std::nextafter(kDay, 2.0 * kDay),
      365.0 * kDay,
      std::nextafter(365.0 * kDay, 0.0),
      std::nextafter(365.0 * kDay, 366.0 * kDay),
      -std::nextafter(kDay, 0.0),
      1e12,
      std::nextafter(1e12, 0.0),
      -1e12,
  };
  for (const SimTime t : probes) {
    const SimTime tod = TimeOfDay(t);
    EXPECT_GE(tod, 0.0) << "t=" << t;
    EXPECT_LT(tod, kDay) << "t=" << t;
  }
}

}  // namespace
}  // namespace sds

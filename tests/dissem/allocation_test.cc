#include "dissem/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::dissem {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(AllocateExponentialTest, SymmetricClusterGetsEqualShares) {
  // Eq. 8: identical servers -> B_j = B_0 / n.
  const std::vector<ServerDemand> servers(8, {1e6, 1e-6});
  const auto alloc = AllocateExponential(servers, 8e6);
  for (const double b : alloc) {
    EXPECT_NEAR(b, 1e6, 1.0);
  }
}

TEST(AllocateExponentialTest, BudgetFullyUsed) {
  Rng rng(1);
  std::vector<ServerDemand> servers;
  for (int i = 0; i < 12; ++i) {
    servers.push_back(
        {1e5 * (1.0 + 9.0 * rng.NextDouble()),
         1e-6 * (0.2 + 2.0 * rng.NextDouble())});
  }
  for (const double budget : {1e5, 1e6, 5e7}) {
    const auto alloc = AllocateExponential(servers, budget);
    double used = Sum(alloc);
    EXPECT_NEAR(used, budget, budget * 1e-9);
    for (const double b : alloc) EXPECT_GE(b, 0.0);
  }
}

TEST(AllocateExponentialTest, PopularServersGetMore) {
  const std::vector<ServerDemand> servers = {{10e6, 1e-6}, {1e6, 1e-6}};
  const auto alloc = AllocateExponential(servers, 4e6);
  EXPECT_GT(alloc[0], alloc[1]);
}

TEST(AllocateExponentialTest, ZeroRateServerExcluded) {
  const std::vector<ServerDemand> servers = {{1e6, 1e-6}, {0.0, 1e-6}};
  const auto alloc = AllocateExponential(servers, 2e6);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
  EXPECT_NEAR(alloc[0], 2e6, 1.0);
}

TEST(AllocateExponentialTest, TinyBudgetClampsUnpopular) {
  // With a tiny budget the closed form goes negative for the unpopular
  // server; KKT clamping must zero it and give everything to the popular
  // one.
  const std::vector<ServerDemand> servers = {{100e6, 1e-6}, {1e3, 1e-6}};
  const auto alloc = AllocateExponential(servers, 1e5);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
  EXPECT_NEAR(alloc[0], 1e5, 1.0);
}

TEST(AllocateExponentialTest, ZeroBudget) {
  const std::vector<ServerDemand> servers = {{1e6, 1e-6}};
  const auto alloc = AllocateExponential(servers, 0.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
}

/// The closed form must actually be the *optimum*: random perturbations
/// that respect the budget can only lower the objective.
class AllocationOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocationOptimalityTest, PerturbationsDoNotImprove) {
  Rng rng(GetParam());
  std::vector<ServerDemand> servers;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    servers.push_back(
        {1e5 * (1.0 + 9.0 * rng.NextDouble()),
         1e-6 * (0.3 + 3.0 * rng.NextDouble())});
  }
  const double budget = 3e6;
  const auto alloc = AllocateExponential(servers, budget);
  const double best = HitFraction(servers, alloc);
  for (int trial = 0; trial < 300; ++trial) {
    auto perturbed = alloc;
    const size_t a = rng.NextBounded(n);
    const size_t b = rng.NextBounded(n);
    if (a == b) continue;
    const double delta =
        std::min(perturbed[a], budget * 0.02 * rng.NextDouble());
    perturbed[a] -= delta;
    perturbed[b] += delta;
    EXPECT_LE(HitFraction(servers, perturbed), best + 1e-9)
        << "perturbation improved the objective";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HitFractionTest, MatchesManualComputation) {
  const std::vector<ServerDemand> servers = {{2e6, 1e-6}, {1e6, 2e-6}};
  const std::vector<double> alloc = {1e6, 5e5};
  const double expected =
      (2e6 * (1.0 - std::exp(-1.0)) + 1e6 * (1.0 - std::exp(-1.0))) / 3e6;
  EXPECT_NEAR(HitFraction(servers, alloc), expected, 1e-12);
}

TEST(AllocateEqualLambdaTest, MatchesGeneralAllocator) {
  // Eq. 6 must agree with the general solver when all lambdas are equal
  // (in the regime with all allocations positive).
  const double lambda = 1e-6;
  const std::vector<double> rates = {4e6, 2e6, 1e6};
  const double budget = 30e6;
  const auto special = AllocateEqualLambda(rates, lambda, budget);
  std::vector<ServerDemand> servers;
  for (const double r : rates) servers.push_back({r, lambda});
  const auto general = AllocateExponential(servers, budget);
  ASSERT_EQ(special.size(), general.size());
  for (size_t i = 0; i < special.size(); ++i) {
    EXPECT_NEAR(special[i], general[i], 1.0);
  }
  EXPECT_NEAR(Sum(special), budget, 1e-3);
}

TEST(AllocateEqualRateTest, MatchesGeneralAllocator) {
  // Eq. 7 must agree with the general solver when all rates are equal.
  const std::vector<double> lambdas = {0.5e-6, 1e-6, 2e-6};
  const double budget = 30e6;
  const auto special = AllocateEqualRate(lambdas, budget);
  std::vector<ServerDemand> servers;
  for (const double l : lambdas) servers.push_back({1e6, l});
  const auto general = AllocateExponential(servers, budget);
  for (size_t i = 0; i < special.size(); ++i) {
    EXPECT_NEAR(special[i], general[i], 1.0);
  }
  EXPECT_NEAR(Sum(special), budget, 1e-3);
}

TEST(AllocateEqualRateTest, LaxStorageFavorsSmallLambda) {
  // Eq. 7 with generous storage: more uniformly accessed servers (smaller
  // lambda) get more space.
  const std::vector<double> lambdas = {0.5e-6, 1e-6, 2e-6};
  const auto alloc = AllocateEqualRate(lambdas, 100e6);
  EXPECT_GT(alloc[0], alloc[1]);
  EXPECT_GT(alloc[1], alloc[2]);
}

TEST(SymmetricTest, AllocationAndHitFraction) {
  EXPECT_DOUBLE_EQ(SymmetricAllocation(10, 100.0), 10.0);
  EXPECT_NEAR(SymmetricHitFraction(10, 1e-6, 10e6),
              1.0 - std::exp(-1.0), 1e-12);
}

TEST(SymmetricTest, PaperWorkedNumbers) {
  // The corrected eq. 10 must reproduce the paper's worked numbers:
  // lambda = 6.247e-7, 10 servers, 90% shield -> ~36 MB total.
  const double lambda = 6.247e-7;
  const double storage = SymmetricStorageForHitFraction(10, lambda, 0.90);
  EXPECT_NEAR(storage / (1024.0 * 1024.0), 36.0, 1.5);
  // 500 MB across 100 servers -> ~96% shield.
  const double shield =
      SymmetricHitFraction(100, lambda, 500.0 * 1024 * 1024);
  EXPECT_NEAR(shield, 0.96, 0.01);
}

TEST(SymmetricTest, StorageInverseOfHitFraction) {
  for (const double alpha : {0.1, 0.5, 0.9, 0.99}) {
    const double storage = SymmetricStorageForHitFraction(7, 3e-7, alpha);
    EXPECT_NEAR(SymmetricHitFraction(7, 3e-7, storage), alpha, 1e-12);
  }
}

// --- Regression: HitFraction must clamp negative allocations at zero.
// AllocateEqualRate (eq. 7 verbatim) legitimately goes negative under
// tight storage; exp(-λ·B) with B < 0 used to turn that into a *negative*
// hit contribution that silently deflated the aggregate. ---
TEST(HitFractionTest, ClampsNegativeAllocationsUnderTightStorage) {
  const std::vector<double> lambdas = {1e-3, 1e-6};
  const double storage = 10.0;
  const auto allocation = AllocateEqualRate(lambdas, storage);
  ASSERT_LT(*std::min_element(allocation.begin(), allocation.end()), 0.0)
      << "fixture must exercise the negative branch of eq. 7";

  std::vector<ServerDemand> servers;
  for (const double lambda : lambdas) servers.push_back({1.0, lambda});
  const double hit = HitFraction(servers, allocation);
  EXPECT_GE(hit, 0.0);
  EXPECT_LE(hit, 1.0);

  // Bit-for-bit the hand-computed clamped value: negatives store nothing.
  double expected_hit_rate = 0.0;
  double total_rate = 0.0;
  for (size_t j = 0; j < servers.size(); ++j) {
    total_rate += servers[j].rate;
    const double stored = std::max(0.0, allocation[j]);
    expected_hit_rate +=
        servers[j].rate * (1.0 - std::exp(-servers[j].lambda * stored));
  }
  EXPECT_EQ(hit, expected_hit_rate / total_rate);
}

// --- Regression: a zero-byte document (requested, but free to store) used
// to produce an inf/NaN density; NaN in the sort comparator breaks strict
// weak ordering (UB). Zero-size documents are now ranked explicitly ahead
// of everything. ---
TEST(AllocateGreedyEmpiricalTest, ZeroByteDocumentDoesNotPoisonOrdering) {
  std::vector<trace::DocumentInfo> docs(3);
  for (trace::DocumentId id = 0; id < 3; ++id) {
    docs[id].id = id;
    docs[id].server = 0;
    docs[id].path = "/doc" + std::to_string(id);
  }
  docs[0].size_bytes = 0;  // the poisonous candidate
  docs[1].size_bytes = 100;
  docs[2].size_bytes = 50;
  const trace::Corpus corpus(std::move(docs));

  ServerPopularity pop;
  pop.server = 0;
  pop.stats.resize(3);
  pop.stats[0].remote_requests = 5;
  pop.stats[1].remote_requests = 10;
  pop.stats[2].remote_requests = 50;
  pop.total_remote_requests = 65;

  const GreedyAllocation out =
      AllocateGreedyEmpirical({pop}, corpus, /*total_storage=*/80.0);
  // The zero-size doc is picked first (free demand), then the densest doc
  // that fits (doc 2 at 1.0 req/byte); doc 1 (0.1 req/byte) busts the
  // budget and is skipped.
  ASSERT_EQ(out.docs.size(), 2u);
  EXPECT_EQ(out.docs[0], 0u);
  EXPECT_EQ(out.docs[1], 2u);
  EXPECT_DOUBLE_EQ(out.used_bytes, 50.0);
  EXPECT_DOUBLE_EQ(out.hit_fraction, 55.0 / 65.0);
}

TEST(AllocateGreedyEmpiricalTest, AllZeroByteCorpusTerminates) {
  std::vector<trace::DocumentInfo> docs(4);
  for (trace::DocumentId id = 0; id < 4; ++id) {
    docs[id].id = id;
    docs[id].server = 0;
    docs[id].size_bytes = 0;
    docs[id].path = "/z" + std::to_string(id);
  }
  const trace::Corpus corpus(std::move(docs));
  ServerPopularity pop;
  pop.server = 0;
  pop.stats.resize(4);
  for (auto& s : pop.stats) s.remote_requests = 1;
  pop.total_remote_requests = 4;
  const GreedyAllocation out = AllocateGreedyEmpirical({pop}, corpus, 10.0);
  EXPECT_EQ(out.docs.size(), 4u);
  EXPECT_DOUBLE_EQ(out.used_bytes, 0.0);
  EXPECT_DOUBLE_EQ(out.hit_fraction, 1.0);
}

// --- Allocation edge cases ---

TEST(AllocationEdgeCaseTest, AllZeroRateServersGetNothing) {
  const std::vector<ServerDemand> servers = {{0.0, 1e-6}, {0.0, 1e-5}};
  const auto allocation = AllocateExponential(servers, 1000.0);
  for (const double b : allocation) EXPECT_EQ(b, 0.0);
  EXPECT_EQ(HitFraction(servers, allocation), 0.0);
}

TEST(AllocationEdgeCaseTest, SingleServerTakesWholeBudget) {
  const std::vector<ServerDemand> servers = {{5.0, 1e-6}};
  const auto allocation = AllocateExponential(servers, 1234.5);
  ASSERT_EQ(allocation.size(), 1u);
  EXPECT_NEAR(allocation[0], 1234.5, 1e-9);
}

TEST(AllocationEdgeCaseTest, ZeroTotalStorageAllocatesNothing) {
  const std::vector<ServerDemand> servers = {{1.0, 1e-6}, {2.0, 1e-5}};
  for (const double b : AllocateExponential(servers, 0.0)) {
    EXPECT_EQ(b, 0.0);
  }
  for (const double b : AllocateProximity(servers, {0, 1}, 0.0)) {
    EXPECT_EQ(b, 0.0);
  }
}

TEST(AllocationEdgeCaseTest, EqualRateTightStorageSumsToBudget) {
  // Even in the negative branch, eq. 7's closed form preserves Σ B_j = B_0.
  const std::vector<double> lambdas = {1e-3, 1e-5, 1e-6};
  const double storage = 25.0;
  const auto allocation = AllocateEqualRate(lambdas, storage);
  ASSERT_LT(*std::min_element(allocation.begin(), allocation.end()), 0.0);
  const double sum =
      std::accumulate(allocation.begin(), allocation.end(), 0.0);
  EXPECT_NEAR(sum, storage, 1e-6 * storage);
}

TEST(AllocationEdgeCaseTest, WaterFillingConvergesAndConservesBudget) {
  // Wildly skewed demands force several clamp rounds; the active-set loop
  // must terminate with a non-negative allocation summing to the budget.
  std::vector<ServerDemand> servers;
  Rng rng(42);
  for (int j = 0; j < 40; ++j) {
    const double lambda = std::pow(10.0, -8.0 + 6.0 * rng.NextDouble());
    const double rate = std::pow(10.0, 6.0 * rng.NextDouble());
    servers.push_back({rate, lambda});
  }
  for (const double storage : {1e2, 1e5, 1e8}) {
    const auto allocation = AllocateExponential(servers, storage);
    double sum = 0.0;
    for (const double b : allocation) {
      EXPECT_GE(b, 0.0);
      sum += b;
    }
    EXPECT_NEAR(sum, storage, 1e-6 * storage) << "B0=" << storage;
  }
}

// --- AllocateProximity ---

TEST(AllocateProximityTest, ZeroWeightUncappedMatchesExponential) {
  const std::vector<ServerDemand> servers = {
      {3.0, 1e-6}, {1.0, 2e-6}, {7.0, 5e-7}};
  const std::vector<uint32_t> distances = {4, 1, 9};
  ProximityAllocationConfig config;
  config.distance_weight = 0.0;
  config.neighborhood_cap = 0;
  const auto prox = AllocateProximity(servers, distances, 1e7, config);
  const auto exact = AllocateExponential(servers, 1e7);
  ASSERT_EQ(prox.size(), exact.size());
  for (size_t j = 0; j < prox.size(); ++j) {
    EXPECT_EQ(prox[j], exact[j]) << "server " << j;
  }
}

TEST(AllocateProximityTest, BudgetConserved) {
  const std::vector<ServerDemand> servers = {
      {3.0, 1e-6}, {1.0, 2e-6}, {7.0, 5e-7}};
  ProximityAllocationConfig config;
  config.distance_weight = 2.0;
  const double storage = 5e6;
  const auto allocation =
      AllocateProximity(servers, {0, 3, 6}, storage, config);
  const double sum =
      std::accumulate(allocation.begin(), allocation.end(), 0.0);
  EXPECT_NEAR(sum, storage, 1e-6 * storage);
}

TEST(AllocateProximityTest, CapOneFundsOnlyTheNearestServer) {
  const std::vector<ServerDemand> servers = {
      {3.0, 1e-6}, {1.0, 1e-6}, {7.0, 1e-6}};
  ProximityAllocationConfig config;
  config.neighborhood_cap = 1;
  const auto allocation =
      AllocateProximity(servers, {3, 1, 2}, 1e6, config);
  EXPECT_EQ(allocation[0], 0.0);
  EXPECT_NEAR(allocation[1], 1e6, 1.0);
  EXPECT_EQ(allocation[2], 0.0);
}

TEST(AllocateProximityTest, FartherEqualDemandServerLosesShare) {
  const std::vector<ServerDemand> servers = {{5.0, 1e-6}, {5.0, 1e-6}};
  ProximityAllocationConfig config;
  config.distance_weight = 1.0;
  const auto allocation = AllocateProximity(servers, {0, 5}, 1e7, config);
  EXPECT_GT(allocation[0], allocation[1]);
  EXPECT_GT(allocation[1], 0.0);
}

}  // namespace
}  // namespace sds::dissem

#include "dissem/allocation.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::dissem {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(AllocateExponentialTest, SymmetricClusterGetsEqualShares) {
  // Eq. 8: identical servers -> B_j = B_0 / n.
  const std::vector<ServerDemand> servers(8, {1e6, 1e-6});
  const auto alloc = AllocateExponential(servers, 8e6);
  for (const double b : alloc) {
    EXPECT_NEAR(b, 1e6, 1.0);
  }
}

TEST(AllocateExponentialTest, BudgetFullyUsed) {
  Rng rng(1);
  std::vector<ServerDemand> servers;
  for (int i = 0; i < 12; ++i) {
    servers.push_back(
        {1e5 * (1.0 + 9.0 * rng.NextDouble()),
         1e-6 * (0.2 + 2.0 * rng.NextDouble())});
  }
  for (const double budget : {1e5, 1e6, 5e7}) {
    const auto alloc = AllocateExponential(servers, budget);
    double used = Sum(alloc);
    EXPECT_NEAR(used, budget, budget * 1e-9);
    for (const double b : alloc) EXPECT_GE(b, 0.0);
  }
}

TEST(AllocateExponentialTest, PopularServersGetMore) {
  const std::vector<ServerDemand> servers = {{10e6, 1e-6}, {1e6, 1e-6}};
  const auto alloc = AllocateExponential(servers, 4e6);
  EXPECT_GT(alloc[0], alloc[1]);
}

TEST(AllocateExponentialTest, ZeroRateServerExcluded) {
  const std::vector<ServerDemand> servers = {{1e6, 1e-6}, {0.0, 1e-6}};
  const auto alloc = AllocateExponential(servers, 2e6);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
  EXPECT_NEAR(alloc[0], 2e6, 1.0);
}

TEST(AllocateExponentialTest, TinyBudgetClampsUnpopular) {
  // With a tiny budget the closed form goes negative for the unpopular
  // server; KKT clamping must zero it and give everything to the popular
  // one.
  const std::vector<ServerDemand> servers = {{100e6, 1e-6}, {1e3, 1e-6}};
  const auto alloc = AllocateExponential(servers, 1e5);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
  EXPECT_NEAR(alloc[0], 1e5, 1.0);
}

TEST(AllocateExponentialTest, ZeroBudget) {
  const std::vector<ServerDemand> servers = {{1e6, 1e-6}};
  const auto alloc = AllocateExponential(servers, 0.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
}

/// The closed form must actually be the *optimum*: random perturbations
/// that respect the budget can only lower the objective.
class AllocationOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocationOptimalityTest, PerturbationsDoNotImprove) {
  Rng rng(GetParam());
  std::vector<ServerDemand> servers;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    servers.push_back(
        {1e5 * (1.0 + 9.0 * rng.NextDouble()),
         1e-6 * (0.3 + 3.0 * rng.NextDouble())});
  }
  const double budget = 3e6;
  const auto alloc = AllocateExponential(servers, budget);
  const double best = HitFraction(servers, alloc);
  for (int trial = 0; trial < 300; ++trial) {
    auto perturbed = alloc;
    const size_t a = rng.NextBounded(n);
    const size_t b = rng.NextBounded(n);
    if (a == b) continue;
    const double delta =
        std::min(perturbed[a], budget * 0.02 * rng.NextDouble());
    perturbed[a] -= delta;
    perturbed[b] += delta;
    EXPECT_LE(HitFraction(servers, perturbed), best + 1e-9)
        << "perturbation improved the objective";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HitFractionTest, MatchesManualComputation) {
  const std::vector<ServerDemand> servers = {{2e6, 1e-6}, {1e6, 2e-6}};
  const std::vector<double> alloc = {1e6, 5e5};
  const double expected =
      (2e6 * (1.0 - std::exp(-1.0)) + 1e6 * (1.0 - std::exp(-1.0))) / 3e6;
  EXPECT_NEAR(HitFraction(servers, alloc), expected, 1e-12);
}

TEST(AllocateEqualLambdaTest, MatchesGeneralAllocator) {
  // Eq. 6 must agree with the general solver when all lambdas are equal
  // (in the regime with all allocations positive).
  const double lambda = 1e-6;
  const std::vector<double> rates = {4e6, 2e6, 1e6};
  const double budget = 30e6;
  const auto special = AllocateEqualLambda(rates, lambda, budget);
  std::vector<ServerDemand> servers;
  for (const double r : rates) servers.push_back({r, lambda});
  const auto general = AllocateExponential(servers, budget);
  ASSERT_EQ(special.size(), general.size());
  for (size_t i = 0; i < special.size(); ++i) {
    EXPECT_NEAR(special[i], general[i], 1.0);
  }
  EXPECT_NEAR(Sum(special), budget, 1e-3);
}

TEST(AllocateEqualRateTest, MatchesGeneralAllocator) {
  // Eq. 7 must agree with the general solver when all rates are equal.
  const std::vector<double> lambdas = {0.5e-6, 1e-6, 2e-6};
  const double budget = 30e6;
  const auto special = AllocateEqualRate(lambdas, budget);
  std::vector<ServerDemand> servers;
  for (const double l : lambdas) servers.push_back({1e6, l});
  const auto general = AllocateExponential(servers, budget);
  for (size_t i = 0; i < special.size(); ++i) {
    EXPECT_NEAR(special[i], general[i], 1.0);
  }
  EXPECT_NEAR(Sum(special), budget, 1e-3);
}

TEST(AllocateEqualRateTest, LaxStorageFavorsSmallLambda) {
  // Eq. 7 with generous storage: more uniformly accessed servers (smaller
  // lambda) get more space.
  const std::vector<double> lambdas = {0.5e-6, 1e-6, 2e-6};
  const auto alloc = AllocateEqualRate(lambdas, 100e6);
  EXPECT_GT(alloc[0], alloc[1]);
  EXPECT_GT(alloc[1], alloc[2]);
}

TEST(SymmetricTest, AllocationAndHitFraction) {
  EXPECT_DOUBLE_EQ(SymmetricAllocation(10, 100.0), 10.0);
  EXPECT_NEAR(SymmetricHitFraction(10, 1e-6, 10e6),
              1.0 - std::exp(-1.0), 1e-12);
}

TEST(SymmetricTest, PaperWorkedNumbers) {
  // The corrected eq. 10 must reproduce the paper's worked numbers:
  // lambda = 6.247e-7, 10 servers, 90% shield -> ~36 MB total.
  const double lambda = 6.247e-7;
  const double storage = SymmetricStorageForHitFraction(10, lambda, 0.90);
  EXPECT_NEAR(storage / (1024.0 * 1024.0), 36.0, 1.5);
  // 500 MB across 100 servers -> ~96% shield.
  const double shield =
      SymmetricHitFraction(100, lambda, 500.0 * 1024 * 1024);
  EXPECT_NEAR(shield, 0.96, 0.01);
}

TEST(SymmetricTest, StorageInverseOfHitFraction) {
  for (const double alpha : {0.1, 0.5, 0.9, 0.99}) {
    const double storage = SymmetricStorageForHitFraction(7, 3e-7, alpha);
    EXPECT_NEAR(SymmetricHitFraction(7, 3e-7, storage), alpha, 1e-12);
  }
}

}  // namespace
}  // namespace sds::dissem

#include "dissem/cluster_simulator.h"

#include "dissem/popularity.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/workload.h"

namespace sds::dissem {
namespace {

class ClusterSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::ClusterConfig(5)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static ClusterSimResult Run(AllocationPolicy policy,
                              double fraction = 0.10) {
    ClusterSimConfig config;
    config.policy = policy;
    config.proxy_storage_fraction = fraction;
    return SimulateClusterAllocation(workload_->corpus(), workload_->clean(),
                                     config);
  }

  static core::Workload* workload_;
};

core::Workload* ClusterSimTest::workload_ = nullptr;

TEST_F(ClusterSimTest, AllPoliciesShieldSomething) {
  for (const auto policy :
       {AllocationPolicy::kOptimalExponential, AllocationPolicy::kEqualSplit,
        AllocationPolicy::kProportionalToRate,
        AllocationPolicy::kGreedyEmpirical}) {
    const auto result = Run(policy);
    EXPECT_GT(result.hit_fraction, 0.2)
        << AllocationPolicyToString(policy);
    EXPECT_LE(result.hit_fraction, 1.0);
  }
}

TEST_F(ClusterSimTest, AllocationWithinBudget) {
  for (const auto policy : {AllocationPolicy::kOptimalExponential,
                            AllocationPolicy::kGreedyEmpirical}) {
    const auto result = Run(policy);
    const double used = std::accumulate(result.allocation.begin(),
                                        result.allocation.end(), 0.0);
    EXPECT_LE(used, result.total_storage * 1.001);
  }
}

TEST_F(ClusterSimTest, OptimalBeatsEqualSplit) {
  // The whole point of eqs. 4-5: demand-aware division of B_0 shields
  // more than a blind equal split (given skewed per-server demand).
  const double optimal =
      Run(AllocationPolicy::kOptimalExponential).hit_fraction;
  const double equal = Run(AllocationPolicy::kEqualSplit).hit_fraction;
  EXPECT_GE(optimal, equal - 0.02);
}

TEST_F(ClusterSimTest, GreedyEmpiricalIsTheCeiling) {
  // The non-parametric greedy optimises the training objective directly,
  // so no model-based policy should beat it by much on the eval window.
  const double greedy = Run(AllocationPolicy::kGreedyEmpirical).hit_fraction;
  for (const auto policy : {AllocationPolicy::kOptimalExponential,
                            AllocationPolicy::kEqualSplit,
                            AllocationPolicy::kProportionalToRate}) {
    EXPECT_LE(Run(policy).hit_fraction, greedy + 0.05)
        << AllocationPolicyToString(policy);
  }
}

TEST_F(ClusterSimTest, PredictionTracksMeasurement) {
  const auto result = Run(AllocationPolicy::kOptimalExponential);
  EXPECT_GT(result.predicted_hit_fraction, 0.0);
  EXPECT_NEAR(result.predicted_hit_fraction, result.hit_fraction, 0.3);
}

TEST_F(ClusterSimTest, MoreStorageShieldsMore) {
  const double small =
      Run(AllocationPolicy::kOptimalExponential, 0.02).hit_fraction;
  const double large =
      Run(AllocationPolicy::kOptimalExponential, 0.25).hit_fraction;
  EXPECT_GT(large, small);
}

TEST_F(ClusterSimTest, RequestVolumeReflectsServerSkew) {
  // ClusterConfig gives server 0 the largest request weight. (Byte rates
  // R_i can be swamped by a server's archive sizes, so check requests.)
  const auto pops =
      AnalyzeAllServers(workload_->corpus(), workload_->clean());
  ASSERT_EQ(pops.size(), 5u);
  EXPECT_GT(pops[0].total_remote_requests, pops[4].total_remote_requests);
}

TEST_F(ClusterSimTest, PolicyNames) {
  EXPECT_STREQ(
      AllocationPolicyToString(AllocationPolicy::kOptimalExponential),
      "optimal-exponential");
  EXPECT_STREQ(AllocationPolicyToString(AllocationPolicy::kGreedyEmpirical),
               "greedy-empirical");
}

}  // namespace
}  // namespace sds::dissem

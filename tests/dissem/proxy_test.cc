#include "dissem/proxy.h"

#include <gtest/gtest.h>

namespace sds::dissem {
namespace {

TEST(ProxyStoreTest, InsertWithinCapacity) {
  ProxyStore store(1000);
  EXPECT_TRUE(store.Insert(1, 400));
  EXPECT_TRUE(store.Insert(2, 600));
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  EXPECT_EQ(store.used_bytes(), 1000u);
  EXPECT_EQ(store.num_docs(), 2u);
}

TEST(ProxyStoreTest, RejectsOverflow) {
  ProxyStore store(1000);
  EXPECT_TRUE(store.Insert(1, 900));
  EXPECT_FALSE(store.Insert(2, 200));
  EXPECT_FALSE(store.Contains(2));
  EXPECT_EQ(store.used_bytes(), 900u);
}

TEST(ProxyStoreTest, DuplicateInsertIsIdempotent) {
  ProxyStore store(1000);
  EXPECT_TRUE(store.Insert(1, 400));
  EXPECT_TRUE(store.Insert(1, 400));
  EXPECT_EQ(store.used_bytes(), 400u);
  EXPECT_EQ(store.num_docs(), 1u);
}

TEST(ProxyStoreTest, EraseFreesSpace) {
  ProxyStore store(1000);
  store.Insert(1, 800);
  store.Erase(1, 800);
  EXPECT_FALSE(store.Contains(1));
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_TRUE(store.Insert(2, 900));
}

TEST(ProxyStoreTest, EraseAbsentIsNoop) {
  ProxyStore store(1000);
  store.Insert(1, 100);
  store.Erase(99, 500);
  EXPECT_EQ(store.used_bytes(), 100u);
}

TEST(ProxyStoreTest, ClearResets) {
  ProxyStore store(1000);
  store.Insert(1, 400);
  store.Insert(2, 400);
  store.Clear();
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.num_docs(), 0u);
  EXPECT_FALSE(store.Contains(1));
}

TEST(ProxyStoreTest, ExactFit) {
  ProxyStore store(100);
  EXPECT_TRUE(store.Insert(1, 100));
  EXPECT_FALSE(store.Insert(2, 1));
}

TEST(ProxyStoreTest, CapacityAccessor) {
  ProxyStore store(12345);
  EXPECT_EQ(store.capacity_bytes(), 12345u);
}

}  // namespace
}  // namespace sds::dissem

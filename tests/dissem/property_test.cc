/// Property tests: invariants of the dissemination stack across the
/// configuration space, and KKT optimality of the allocator on random
/// instances.

#include <cmath>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/allocation.h"
#include "dissem/simulator.h"
#include "util/rng.h"

namespace sds::dissem {
namespace {

class DisseminationInvariantsTest
    : public ::testing::TestWithParam<
          std::tuple<double /*fraction*/, uint32_t /*proxies*/,
                     int /*placement*/, bool /*tailored*/>> {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static core::Workload* workload_;
};

core::Workload* DisseminationInvariantsTest::workload_ = nullptr;

TEST_P(DisseminationInvariantsTest, AccountingHolds) {
  const auto [fraction, proxies, placement_int, tailored] = GetParam();
  DisseminationConfig config;
  config.dissemination_fraction = fraction;
  config.num_proxies = proxies;
  config.placement = static_cast<PlacementStrategy>(placement_int);
  config.tailored_per_proxy = tailored;
  Rng rng(7);
  const auto result = SimulateDissemination(
      workload_->corpus(), workload_->clean(), workload_->topology(), 0,
      config, &rng, &workload_->generated().updates);

  EXPECT_GE(result.saved_fraction, 0.0);
  EXPECT_LE(result.saved_fraction, 1.0);
  EXPECT_LE(result.with_proxies_bytes_hops,
            result.baseline_bytes_hops + 1e-6);
  EXPECT_GE(result.proxy_hit_fraction, 0.0);
  EXPECT_LE(result.proxy_hit_fraction, 1.0);
  EXPECT_LE(result.proxy_requests.size(), proxies);
  const double budget =
      fraction * static_cast<double>(workload_->corpus().ServerBytes(0));
  EXPECT_LE(static_cast<double>(result.storage_per_proxy_bytes),
            budget * 1.01);
  EXPECT_LE(result.stale_fraction, 1.0);
  EXPECT_GE(result.stale_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisseminationInvariantsTest,
    ::testing::Combine(
        ::testing::Values(0.02, 0.10, 0.40),
        ::testing::Values(1u, 4u, 12u),
        ::testing::Values(static_cast<int>(PlacementStrategy::kGreedy),
                          static_cast<int>(PlacementStrategy::kRegional),
                          static_cast<int>(PlacementStrategy::kRandom)),
        ::testing::Bool()));

/// KKT check on random instances: at the computed optimum, every *active*
/// server has equal marginal value density R_j h_j(B_j), and every clamped
/// server's marginal at zero is below that level.
class AllocationKktTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocationKktTest, MarginalsEqualizeAcrossActiveServers) {
  Rng rng(GetParam());
  std::vector<ServerDemand> servers;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    servers.push_back({std::pow(10.0, 4.0 + 3.0 * rng.NextDouble()),
                       std::pow(10.0, -7.0 + 1.5 * rng.NextDouble())});
  }
  const double budget = 2e6;
  const auto alloc = AllocateExponential(servers, budget);

  double active_level = -1.0;
  for (int j = 0; j < n; ++j) {
    const double marginal = servers[j].rate * servers[j].lambda *
                            std::exp(-servers[j].lambda * alloc[j]);
    if (alloc[j] > 1.0) {  // active
      if (active_level < 0.0) {
        active_level = marginal;
      } else {
        EXPECT_NEAR(marginal / active_level, 1.0, 1e-6)
            << "server " << j << " marginal off the common level";
      }
    }
  }
  ASSERT_GE(active_level, 0.0) << "no active servers";
  for (int j = 0; j < n; ++j) {
    if (alloc[j] <= 1.0) {
      const double marginal_at_zero = servers[j].rate * servers[j].lambda;
      EXPECT_LE(marginal_at_zero, active_level * (1.0 + 1e-6))
          << "clamped server " << j << " should have been active";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationKktTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sds::dissem

#include "dissem/popularity.h"

#include <gtest/gtest.h>

#include "core/workload.h"

namespace sds::dissem {
namespace {

class PopularityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
    pop_ = new ServerPopularity(
        AnalyzeServer(workload_->corpus(), workload_->clean(), 0));
  }
  static void TearDownTestSuite() {
    delete pop_;
    delete workload_;
    pop_ = nullptr;
    workload_ = nullptr;
  }

  static core::Workload* workload_;
  static ServerPopularity* pop_;
};

core::Workload* PopularityTest::workload_ = nullptr;
ServerPopularity* PopularityTest::pop_ = nullptr;

TEST_F(PopularityTest, TotalsMatchTrace) {
  uint64_t remote_requests = 0, remote_bytes = 0;
  for (const auto& r : workload_->clean().requests) {
    if (r.remote_client && r.server == 0) {
      ++remote_requests;
      remote_bytes += r.bytes;
    }
  }
  EXPECT_EQ(pop_->total_remote_requests, remote_requests);
  EXPECT_EQ(pop_->total_remote_bytes, remote_bytes);
}

TEST_F(PopularityTest, PerDocStatsSumToTotals) {
  uint64_t sum = 0;
  for (const auto& s : pop_->stats) sum += s.remote_requests;
  EXPECT_EQ(sum, pop_->total_remote_requests);
}

TEST_F(PopularityTest, OrderingIsByDensity) {
  const auto& corpus = workload_->corpus();
  for (size_t i = 1; i < pop_->by_popularity.size(); ++i) {
    const auto a = pop_->by_popularity[i - 1];
    const auto b = pop_->by_popularity[i];
    const double da = static_cast<double>(pop_->stats[a].remote_requests) /
                      corpus.doc(a).size_bytes;
    const double db = static_cast<double>(pop_->stats[b].remote_requests) /
                      corpus.doc(b).size_bytes;
    EXPECT_GE(da, db);
  }
}

TEST_F(PopularityTest, EmpiricalHMonotoneAndBounded) {
  const auto& corpus = workload_->corpus();
  double prev = 0.0;
  for (double bytes = 0.0; bytes < 3e6; bytes += 1e5) {
    const double h = pop_->EmpiricalH(bytes, corpus);
    EXPECT_GE(h, prev - 1e-12);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-12);
    prev = h;
  }
  EXPECT_DOUBLE_EQ(pop_->EmpiricalH(0.0, corpus), 0.0);
  EXPECT_NEAR(pop_->EmpiricalH(1e12, corpus), 1.0, 1e-9);
}

TEST_F(PopularityTest, ByteCoverageMonotone) {
  const auto& corpus = workload_->corpus();
  double prev = 0.0;
  for (double bytes = 0.0; bytes < 3e6; bytes += 2e5) {
    const double h = pop_->EmpiricalByteCoverage(bytes, corpus);
    EXPECT_GE(h, prev - 1e-12);
    prev = h;
  }
}

TEST_F(PopularityTest, PopularitySkewIsStrong) {
  // The generator is calibrated so a small byte prefix covers most
  // requests (Figure 1 shape).
  const auto& corpus = workload_->corpus();
  const double total = static_cast<double>(corpus.ServerBytes(0));
  EXPECT_GT(pop_->EmpiricalH(0.10 * total, corpus), 0.5);
}

TEST_F(PopularityTest, TimeWindowRestrictsCounts) {
  const double span = workload_->clean().Span();
  const ServerPopularity half =
      AnalyzeServer(workload_->corpus(), workload_->clean(), 0, 0.0,
                    span / 2.0);
  EXPECT_LT(half.total_remote_requests, pop_->total_remote_requests);
  EXPECT_GT(half.total_remote_requests, 0u);
}

TEST_F(PopularityTest, RemoteRatioWithinBounds) {
  for (const auto& s : pop_->stats) {
    const double ratio = s.RemoteRatio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

TEST_F(PopularityTest, BlockPopularityFractionsSumToOne) {
  const auto blocks =
      ComputeBlockPopularity(*pop_, workload_->corpus(), 64 * 1024);
  double sum = 0.0;
  for (const double f : blocks.request_fraction) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  ASSERT_FALSE(blocks.cumulative_requests.empty());
  EXPECT_NEAR(blocks.cumulative_requests.back(), 1.0, 1e-9);
  EXPECT_NEAR(blocks.cumulative_bytes.back(), 1.0, 1e-9);
}

TEST_F(PopularityTest, BlockFractionsNonIncreasing) {
  const auto blocks =
      ComputeBlockPopularity(*pop_, workload_->corpus(), 64 * 1024);
  for (size_t i = 1; i < blocks.request_fraction.size(); ++i) {
    EXPECT_GE(blocks.request_fraction[i - 1],
              blocks.request_fraction[i] - 1e-9);
  }
}

TEST_F(PopularityTest, BlockCountMatchesBytes) {
  const uint64_t block = 256 * 1024;
  const auto blocks = ComputeBlockPopularity(*pop_, workload_->corpus(), block);
  const uint64_t total = workload_->corpus().ServerBytes(0);
  EXPECT_EQ(blocks.request_fraction.size(), (total + block - 1) / block);
}

TEST(PopularityEdgeTest, EmptyTrace) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  trace::Trace empty;
  empty.num_clients = 1;
  const ServerPopularity pop = AnalyzeServer(workload.corpus(), empty, 0);
  EXPECT_EQ(pop.total_remote_requests, 0u);
  EXPECT_DOUBLE_EQ(pop.EmpiricalH(1e6, workload.corpus()), 0.0);
  const auto blocks = ComputeBlockPopularity(pop, workload.corpus(), 1024);
  EXPECT_TRUE(blocks.request_fraction.empty());
}

}  // namespace
}  // namespace sds::dissem

#include "dissem/pull_cache.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/simulator.h"
#include "util/rng.h"

namespace sds::dissem {
namespace {

class PullCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  PullCacheResult Run(const PullCacheConfig& config, uint64_t seed = 1) {
    Rng rng(seed);
    return SimulatePullThroughCache(workload_->corpus(), workload_->clean(),
                                    workload_->topology(), 0, config, &rng,
                                    &workload_->generated().updates);
  }

  static core::Workload* workload_;
};

core::Workload* PullCacheTest::workload_ = nullptr;

TEST_F(PullCacheTest, SavesBandwidth) {
  PullCacheConfig config;
  config.num_proxies = 4;
  config.storage_fraction = 0.10;
  const auto result = Run(config);
  EXPECT_GT(result.saved_fraction, 0.0);
  EXPECT_LT(result.saved_fraction, 1.0);
  EXPECT_GT(result.proxy_hit_fraction, 0.0);
}

TEST_F(PullCacheTest, MoreStorageNeverHurts) {
  PullCacheConfig config;
  config.num_proxies = 4;
  config.storage_fraction = 0.02;
  const double small = Run(config).saved_fraction;
  config.storage_fraction = 0.20;
  const double large = Run(config).saved_fraction;
  EXPECT_GE(large, small - 0.02);
}

TEST_F(PullCacheTest, StorageRespectsBudget) {
  PullCacheConfig config;
  config.storage_fraction = 0.05;
  const auto result = Run(config);
  const double budget =
      0.05 * static_cast<double>(workload_->corpus().ServerBytes(0));
  EXPECT_LE(static_cast<double>(result.storage_per_proxy_bytes),
            budget * 1.01);
}

TEST_F(PullCacheTest, TightBudgetEvicts) {
  PullCacheConfig config;
  config.storage_fraction = 0.01;
  const auto tight = Run(config);
  config.storage_fraction = 0.50;
  const auto lax = Run(config);
  EXPECT_GT(tight.evictions, lax.evictions);
}

TEST_F(PullCacheTest, InvalidationDropsCopies) {
  PullCacheConfig config;
  config.invalidate_on_update = true;
  const auto with = Run(config);
  EXPECT_GT(with.invalidations, 0u);
  config.invalidate_on_update = false;
  const auto without = Run(config);
  EXPECT_EQ(without.invalidations, 0u);
  // Invalidation can only reduce hits.
  EXPECT_LE(with.saved_fraction, without.saved_fraction + 0.02);
}

TEST_F(PullCacheTest, PushBeatsPullAtEqualStorage) {
  // The paper's core claim: server-initiated dissemination uses its
  // knowledge of the popularity profile, while pull caching pays
  // compulsory misses. At modest storage push must not lose.
  PullCacheConfig pull;
  pull.num_proxies = 4;
  pull.storage_fraction = 0.10;
  const auto pull_result = Run(pull);

  DisseminationConfig push;
  push.num_proxies = 4;
  push.dissemination_fraction = 0.10;
  Rng rng(1);
  const auto push_result = SimulateDissemination(
      workload_->corpus(), workload_->clean(), workload_->topology(), 0,
      push, &rng, &workload_->generated().updates);
  EXPECT_GE(push_result.saved_fraction, pull_result.saved_fraction - 0.03);
}

TEST_F(PullCacheTest, EmptyTraceYieldsZero) {
  trace::Trace empty;
  empty.num_clients = workload_->clean().num_clients;
  Rng rng(2);
  const auto result = SimulatePullThroughCache(
      workload_->corpus(), empty, workload_->topology(), 0, PullCacheConfig{},
      &rng, nullptr);
  EXPECT_DOUBLE_EQ(result.saved_fraction, 0.0);
}

}  // namespace
}  // namespace sds::dissem

#include "dissem/expfit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/popularity.h"
#include "trace/corpus.h"
#include "util/rng.h"

namespace sds::dissem {
namespace {

TEST(ExponentialModelTest, BasicProperties) {
  const ExponentialModel model{1e-6};
  EXPECT_DOUBLE_EQ(model.H(0.0), 0.0);
  EXPECT_NEAR(model.H(1e6), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(model.Density(0.0), 1e-6, 1e-18);
  // H is the integral of the density: H(b+db)-H(b) ~ h(b) db.
  const double b = 5e5, db = 1.0;
  EXPECT_NEAR(model.H(b + db) - model.H(b), model.Density(b) * db, 1e-12);
}

TEST(ExponentialModelTest, BytesForHitFractionInverts) {
  const ExponentialModel model{6.247e-7};
  for (const double alpha : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(model.H(model.BytesForHitFraction(alpha)), alpha, 1e-12);
  }
  EXPECT_DOUBLE_EQ(model.BytesForHitFraction(0.0), 0.0);
}

TEST(ExpFitTest, RecoversLambdaFromSyntheticExponentialCurve) {
  // Build a fake popularity profile whose empirical H is exactly
  // exponential, then check the fit recovers lambda.
  const double lambda = 2e-6;
  std::vector<trace::DocumentInfo> docs;
  ServerPopularity pop;
  pop.server = 0;
  const uint64_t doc_size = 10000;
  const int n = 400;
  double prev_h = 0.0;
  std::vector<uint64_t> requests(n);
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    trace::DocumentInfo d;
    d.id = i;
    d.server = 0;
    d.size_bytes = doc_size;
    d.path = "/d/" + std::to_string(i) + ".html";
    docs.push_back(d);
    const double h =
        1.0 - std::exp(-lambda * static_cast<double>((i + 1) * doc_size));
    requests[i] = static_cast<uint64_t>(std::llround((h - prev_h) * 1e7));
    total += requests[i];
    prev_h = h;
  }
  const trace::Corpus corpus(std::move(docs));
  pop.stats.assign(n, DocumentAccessStats{});
  for (int i = 0; i < n; ++i) {
    pop.stats[i].remote_requests = requests[i];
    pop.by_popularity.push_back(i);
  }
  pop.total_remote_requests = total;

  const ExponentialFit fit = FitExponentialPopularity(pop, corpus);
  EXPECT_NEAR(fit.lambda, lambda, lambda * 0.05);
  EXPECT_GT(fit.r_squared, 0.98);
  EXPECT_GT(fit.points, 10u);
}

TEST(ExpFitTest, EmptyProfileYieldsZero) {
  ServerPopularity pop;
  pop.stats.assign(10, DocumentAccessStats{});
  const trace::Corpus corpus;
  const ExponentialFit fit = FitExponentialPopularity(pop, corpus);
  EXPECT_DOUBLE_EQ(fit.lambda, 0.0);
  EXPECT_EQ(fit.points, 0u);
}

TEST(ExpFitTest, FitsWorkloadReasonably) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const ServerPopularity pop =
      AnalyzeServer(workload.corpus(), workload.clean(), 0);
  const ExponentialFit fit =
      FitExponentialPopularity(pop, workload.corpus());
  EXPECT_GT(fit.lambda, 0.0);
  EXPECT_GT(fit.r_squared, 0.6);
  // Sanity: the model should roughly predict the empirical coverage of the
  // top 20% of bytes.
  const double bytes = 0.2 * workload.corpus().ServerBytes(0);
  const ExponentialModel model{fit.lambda};
  EXPECT_NEAR(model.H(bytes),
              pop.EmpiricalH(bytes, workload.corpus()), 0.25);
}

}  // namespace
}  // namespace sds::dissem

#include "dissem/simulator.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "net/faults.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sds::dissem {
namespace {

class DisseminationSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  DisseminationResult Run(const DisseminationConfig& config,
                          uint64_t seed = 1) {
    Rng rng(seed);
    return SimulateDissemination(workload_->corpus(), workload_->clean(),
                                 workload_->topology(), 0, config, &rng,
                                 &workload_->generated().updates);
  }

  static core::Workload* workload_;
};

core::Workload* DisseminationSimTest::workload_ = nullptr;

TEST_F(DisseminationSimTest, SavesBandwidth) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  const auto result = Run(config);
  EXPECT_GT(result.saved_fraction, 0.05);
  EXPECT_LT(result.saved_fraction, 1.0);
  EXPECT_GT(result.proxy_hit_fraction, 0.0);
  EXPECT_LT(result.with_proxies_bytes_hops, result.baseline_bytes_hops);
}

TEST_F(DisseminationSimTest, MoreProxiesNeverHurt) {
  DisseminationConfig config;
  double prev = -1.0;
  for (const uint32_t k : {1u, 2u, 4u, 8u}) {
    config.num_proxies = k;
    const auto result = Run(config);
    EXPECT_GE(result.saved_fraction, prev - 0.02) << k;
    prev = result.saved_fraction;
  }
}

TEST_F(DisseminationSimTest, MoreDataNeverHurts) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.04;
  const double low = Run(config).saved_fraction;
  config.dissemination_fraction = 0.20;
  const double high = Run(config).saved_fraction;
  EXPECT_GE(high, low - 0.02);
}

TEST_F(DisseminationSimTest, StorageRespectsBudget) {
  DisseminationConfig config;
  config.num_proxies = 3;
  config.dissemination_fraction = 0.10;
  const auto result = Run(config);
  const double budget =
      0.10 * static_cast<double>(workload_->corpus().ServerBytes(0));
  EXPECT_LE(static_cast<double>(result.storage_per_proxy_bytes),
            budget * 1.01);
}

TEST_F(DisseminationSimTest, LoadSplitsBetweenServerAndProxies) {
  DisseminationConfig config;
  config.num_proxies = 4;
  const auto result = Run(config);
  uint64_t proxy_total = 0;
  for (const uint64_t n : result.proxy_requests) proxy_total += n;
  EXPECT_GT(proxy_total, 0u);
  EXPECT_GT(result.server_requests, 0u);
  const double hit = static_cast<double>(proxy_total) /
                     static_cast<double>(proxy_total + result.server_requests);
  EXPECT_NEAR(hit, result.proxy_hit_fraction, 1e-9);
}

TEST_F(DisseminationSimTest, GreedyBeatsRandomPlacement) {
  DisseminationConfig config;
  config.num_proxies = 3;
  config.placement = PlacementStrategy::kGreedy;
  const double greedy = Run(config).saved_fraction;
  config.placement = PlacementStrategy::kRandom;
  double random_sum = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    random_sum += Run(config, seed).saved_fraction;
  }
  EXPECT_GT(greedy, random_sum / 5.0);
}

TEST_F(DisseminationSimTest, TailoredAtLeastAsGoodAsUniform) {
  DisseminationConfig config;
  config.num_proxies = 6;
  config.dissemination_fraction = 0.04;
  const double uniform = Run(config).saved_fraction;
  config.tailored_per_proxy = true;
  const double tailored = Run(config).saved_fraction;
  EXPECT_GE(tailored, uniform - 0.05);
}

TEST_F(DisseminationSimTest, DynamicShieldingLimitsProxyLoad) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.proxy_daily_request_capacity = 5;
  const auto result = Run(config);
  EXPECT_GT(result.shielding_overflow_requests, 0u);
  // Savings shrink but stay non-negative.
  config.proxy_daily_request_capacity = 0;
  const auto unlimited = Run(config);
  EXPECT_LT(result.saved_fraction, unlimited.saved_fraction);
  EXPECT_GE(result.saved_fraction, 0.0);
}

TEST_F(DisseminationSimTest, ExcludeMutableStillSaves) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.exclude_mutable = true;
  const auto result = Run(config);
  EXPECT_GT(result.saved_fraction, 0.0);
}

TEST_F(DisseminationSimTest, StalenessAccountingShapes) {
  DisseminationConfig config;
  config.num_proxies = 4;
  const auto never = Run(config);
  EXPECT_GT(never.stale_proxy_requests, 0u);
  EXPECT_GT(never.stale_fraction, 0.0);
  EXPECT_LE(never.stale_fraction, 1.0);

  // Daily re-dissemination removes staleness entirely.
  config.redisseminate_every_days = 1;
  const auto daily = Run(config);
  EXPECT_EQ(daily.stale_proxy_requests, 0u);

  // Weekly re-push sits in between.
  config.redisseminate_every_days = 7;
  const auto weekly = Run(config);
  EXPECT_LE(weekly.stale_proxy_requests, never.stale_proxy_requests);
  EXPECT_GE(weekly.stale_proxy_requests, daily.stale_proxy_requests);

  // Excluding mutable documents cuts staleness without re-pushing.
  config.redisseminate_every_days = 0;
  config.exclude_mutable = true;
  const auto excluded = Run(config);
  EXPECT_LT(excluded.stale_fraction, never.stale_fraction);
}

TEST_F(DisseminationSimTest, DepthRestrictedPlacementWorks) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.placement_depths = {1};
  const auto regional = Run(config);
  config.placement_depths.clear();
  const auto free_placement = Run(config);
  EXPECT_GT(regional.saved_fraction, 0.0);
  EXPECT_GE(free_placement.saved_fraction, regional.saved_fraction - 0.02);
}

TEST_F(DisseminationSimTest, ShieldingOverflowConservesRequestAccounting) {
  // Every evaluated request is served exactly once: by a proxy, by the home
  // server directly, or by the home server after shielding overflow. The
  // total must not depend on the capacity limit (regression: overflowed
  // requests used to be double-counted as server requests).
  DisseminationConfig config;
  config.num_proxies = 4;
  uint64_t expected_total = 0;
  for (const uint64_t capacity : {uint64_t{0}, uint64_t{5}, uint64_t{1} << 40}) {
    config.proxy_daily_request_capacity = capacity;
    const auto result = Run(config);
    uint64_t total = result.server_requests + result.shielding_overflow_requests;
    for (const uint64_t n : result.proxy_requests) total += n;
    if (expected_total == 0) {
      expected_total = total;
    } else {
      EXPECT_EQ(total, expected_total) << "capacity " << capacity;
    }
    if (capacity == 5) {
      EXPECT_GT(result.shielding_overflow_requests, 0u);
    } else {
      EXPECT_EQ(result.shielding_overflow_requests, 0u);
    }
    // Overflowed requests pay the full home-server hop cost, so shielding
    // can only lose bandwidth relative to unlimited proxies.
    EXPECT_GE(result.with_proxies_bytes_hops, 0.0);
    EXPECT_LE(result.with_proxies_bytes_hops,
              result.baseline_bytes_hops * (1.0 + 1e-9));
  }
}

TEST_F(DisseminationSimTest, BaselineCostIndependentOfConfig) {
  DisseminationConfig a;
  a.num_proxies = 1;
  DisseminationConfig b;
  b.num_proxies = 8;
  b.dissemination_fraction = 0.5;
  EXPECT_DOUBLE_EQ(Run(a).baseline_bytes_hops, Run(b).baseline_bytes_hops);
}

// --- Randomized d-choice replica selection ---

TEST_F(DisseminationSimTest, DChoiceD1IsBitIdenticalAcrossSeeds) {
  // selection_d = 1 must make zero extra RNG draws, so the result cannot
  // depend on the seed and is bit-identical to the legacy static path.
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  const auto legacy = Run(config, /*seed=*/1);
  config.selection_d = 1;
  const auto d1 = Run(config, /*seed=*/987654321);
  EXPECT_EQ(legacy.with_proxies_bytes_hops, d1.with_proxies_bytes_hops);
  EXPECT_EQ(legacy.saved_fraction, d1.saved_fraction);
  EXPECT_EQ(legacy.proxy_hit_fraction, d1.proxy_hit_fraction);
  EXPECT_EQ(legacy.proxy_requests, d1.proxy_requests);
  EXPECT_EQ(legacy.server_requests, d1.server_requests);
  EXPECT_EQ(legacy.load_imbalance_max_mean, d1.load_imbalance_max_mean);
  EXPECT_EQ(legacy.load_imbalance_p99_mean, d1.load_imbalance_p99_mean);
  EXPECT_EQ(legacy.per_level_imbalance, d1.per_level_imbalance);
}

TEST_F(DisseminationSimTest, DChoiceDeterministicGivenSeed) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.selection_d = 2;
  const auto a = Run(config, /*seed=*/7);
  const auto b = Run(config, /*seed=*/7);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_EQ(a.load_imbalance_max_mean, b.load_imbalance_max_mean);
}

TEST_F(DisseminationSimTest, DChoiceReducesLoadImbalance) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  const auto static_opt = Run(config);
  config.selection_d = 2;
  const auto d2 = Run(config);
  EXPECT_LT(d2.load_imbalance_max_mean, static_opt.load_imbalance_max_mean);
  EXPECT_LE(d2.load_imbalance_p99_mean, static_opt.load_imbalance_p99_mean);
  EXPECT_GE(d2.load_imbalance_max_mean, 1.0);  // max/mean is >= 1 by definition
}

TEST_F(DisseminationSimTest, DChoiceConservesRequestAccounting) {
  // d-choice only re-routes requests among holders; every evaluated
  // request is still served exactly once.
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  uint64_t expected_total = 0;
  for (const uint32_t d : {1u, 2u, 4u, 16u}) {
    config.selection_d = d;
    const auto result = Run(config);
    uint64_t total =
        result.server_requests + result.shielding_overflow_requests;
    for (const uint64_t n : result.proxy_requests) total += n;
    if (expected_total == 0) {
      expected_total = total;
    } else {
      EXPECT_EQ(total, expected_total) << "d=" << d;
    }
  }
}

TEST_F(DisseminationSimTest, DChoiceServesNoFartherThanHomeServer) {
  // Candidate holders are capped at the home-server distance, so d-choice
  // can shift bytes x hops but never above the no-proxy baseline.
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.selection_d = 4;
  const auto result = Run(config);
  EXPECT_LE(result.with_proxies_bytes_hops,
            result.baseline_bytes_hops * (1.0 + 1e-9));
  EXPECT_GT(result.proxy_hit_fraction, 0.0);
}

TEST_F(DisseminationSimTest, DChoiceWithShieldingStillConserves) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.selection_d = 2;
  config.proxy_daily_request_capacity = 5;
  const auto result = Run(config);
  EXPECT_GT(result.shielding_overflow_requests, 0u);
  uint64_t total =
      result.server_requests + result.shielding_overflow_requests;
  for (const uint64_t n : result.proxy_requests) total += n;
  config.selection_d = 1;
  config.proxy_daily_request_capacity = 0;
  const auto unlimited = Run(config);
  uint64_t unlimited_total = unlimited.server_requests;
  for (const uint64_t n : unlimited.proxy_requests) unlimited_total += n;
  EXPECT_EQ(total, unlimited_total);
}

TEST_F(DisseminationSimTest, DChoiceUnderFaultsIsDeterministicAndServes) {
  net::FaultInjectionConfig fault_config;
  fault_config.horizon_days =
      workload_->clean().Span() / kDay + 1.0;
  fault_config.node_failure_rate_per_day = 0.05;
  fault_config.server_failure_rate_per_day = 0.05;
  fault_config.mean_outage_days = 0.5;
  Rng fault_rng(31337);
  const net::FaultSchedule schedule = net::GenerateFaultSchedule(
      workload_->topology(), fault_config, &fault_rng);

  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.selection_d = 2;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  config.retry.jitter = 0.0;
  const auto a = Run(config, /*seed=*/11);
  const auto b = Run(config, /*seed=*/11);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_LT(a.unavailable_fraction, 0.5);
  EXPECT_GT(a.proxy_hit_fraction, 0.0);
}

// --- Proximity placement + allocation policy ---

TEST_F(DisseminationSimTest, ProximityStrategySavesBandwidth) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.placement = PlacementStrategy::kProximity;
  config.proximity_allocation = true;
  const auto result = Run(config);
  EXPECT_GT(result.saved_fraction, 0.0);
  EXPECT_LT(result.saved_fraction, 1.0);
  EXPECT_GT(result.proxy_hit_fraction, 0.0);
  EXPECT_EQ(result.proxy_nodes.size(), result.proxy_requests.size());
}

TEST_F(DisseminationSimTest, ProximityAllocationRespectsTotalBudget) {
  // The proximity allocator redistributes the pooled budget; per-proxy
  // stores may differ but the total must not exceed k x per-proxy budget.
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.proximity_allocation = true;
  const auto prox = Run(config);
  config.proximity_allocation = false;
  const auto uniform = Run(config);
  EXPECT_LE(prox.total_storage_bytes,
            uniform.total_storage_bytes + uniform.storage_per_proxy_bytes);
  EXPECT_GT(prox.saved_fraction, 0.0);
}

TEST_F(DisseminationSimTest, ProximityStrategyDeterministic) {
  DisseminationConfig config;
  config.num_proxies = 4;
  config.dissemination_fraction = 0.10;
  config.placement = PlacementStrategy::kProximity;
  config.proximity_allocation = true;
  const auto a = Run(config, /*seed=*/3);
  const auto b = Run(config, /*seed=*/99);  // no RNG dependence either
  EXPECT_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
}

}  // namespace
}  // namespace sds::dissem

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/simulator.h"
#include "net/faults.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sds::dissem {
namespace {

// --- RetryPolicy unit tests -------------------------------------------------

TEST(RetryPolicyTest, BackoffIsExponentialAndCappedWithoutJitter) {
  net::RetryPolicy policy;
  policy.base_backoff_s = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  policy.jitter = 0.0;
  const double expected[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0, 60.0};
  for (uint32_t i = 0; i < 8; ++i) {
    // jitter == 0 must not require (or consume) an Rng.
    EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(i, nullptr), expected[i]) << i;
  }
}

TEST(RetryPolicyTest, JitterStaysInBoundsAndIsDeterministic) {
  net::RetryPolicy policy;
  policy.base_backoff_s = 2.0;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_s = 1000.0;
  policy.jitter = 0.25;
  Rng rng_a(99);
  Rng rng_b(99);
  bool saw_off_center = false;
  for (uint32_t i = 0; i < 6; ++i) {
    const double center = std::min(2.0 * std::pow(3.0, i), 1000.0);
    const double a = policy.BackoffBeforeRetry(i, &rng_a);
    const double b = policy.BackoffBeforeRetry(i, &rng_b);
    EXPECT_DOUBLE_EQ(a, b) << i;  // same stream, same backoff
    EXPECT_GE(a, center * 0.75) << i;
    EXPECT_LT(a, center * 1.25) << i;
    if (std::abs(a - center) > 1e-6 * center) saw_off_center = true;
  }
  EXPECT_TRUE(saw_off_center);
}

// --- Failover ordering in the dissemination simulator -----------------------

class FailoverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  DisseminationResult Run(const DisseminationConfig& config,
                          uint64_t seed = 1) {
    Rng rng(seed);
    return SimulateDissemination(workload_->corpus(), workload_->clean(),
                                 workload_->topology(), 0, config, &rng,
                                 &workload_->generated().updates);
  }

  /// A fault interval covering the whole trace (and its retry tail).
  std::pair<SimTime, SimTime> FullSpan() const {
    return {0.0, workload_->clean().Span() + 30 * kDay};
  }

  static uint64_t TotalAccounted(const DisseminationResult& r) {
    uint64_t total = r.server_requests + r.shielding_overflow_requests +
                     r.unavailable_requests;
    for (const uint64_t n : r.proxy_requests) total += n;
    return total;
  }

  static core::Workload* workload_;
};

core::Workload* FailoverTest::workload_ = nullptr;

TEST_F(FailoverTest, EmptyScheduleIsBitIdenticalToNoSchedule) {
  DisseminationConfig plain;
  plain.num_proxies = 4;
  const auto a = Run(plain);

  net::FaultSchedule empty;
  DisseminationConfig with_empty = plain;
  with_empty.faults = &empty;
  const auto b = Run(with_empty);

  EXPECT_DOUBLE_EQ(a.baseline_bytes_hops, b.baseline_bytes_hops);
  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_DOUBLE_EQ(a.saved_fraction, b.saved_fraction);
  EXPECT_DOUBLE_EQ(a.proxy_hit_fraction, b.proxy_hit_fraction);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(b.unavailable_requests, 0u);
  EXPECT_EQ(b.failover_requests, 0u);
  EXPECT_EQ(b.retry_attempts, 0u);
  EXPECT_DOUBLE_EQ(b.retry_wait_seconds, 0.0);
}

TEST_F(FailoverTest, DeadProxyNodeShiftsItsLoadElsewhere) {
  DisseminationConfig plain;
  plain.num_proxies = 4;
  const auto healthy = Run(plain);
  ASSERT_EQ(healthy.proxy_nodes.size(), 4u);

  // Kill the busiest proxy's node for the whole trace.
  size_t busiest = 0;
  for (size_t p = 1; p < healthy.proxy_requests.size(); ++p) {
    if (healthy.proxy_requests[p] > healthy.proxy_requests[busiest]) {
      busiest = p;
    }
  }
  ASSERT_GT(healthy.proxy_requests[busiest], 0u);
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kNodeOutage, healthy.proxy_nodes[busiest],
                start, end});

  DisseminationConfig faulted = plain;
  faulted.faults = &schedule;
  faulted.retry.max_attempts = 6;
  const auto result = Run(faulted);

  // The dead proxy serves nothing; its former requests fail over to other
  // replicas or the home server rather than vanishing.
  EXPECT_EQ(result.proxy_requests[busiest], 0u);
  EXPECT_GT(result.failover_requests, 0u);
  EXPECT_GT(result.retry_attempts, 0u);
  EXPECT_GT(result.retry_wait_seconds, 0.0);
  EXPECT_EQ(TotalAccounted(result), TotalAccounted(healthy));
}

TEST_F(FailoverTest, ProxiesServeThroughFullServerOutage) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});

  DisseminationConfig config;
  config.num_proxies = 8;
  config.dissemination_fraction = 0.10;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  const auto result = Run(config);

  // Without proxies every request is unavailable; with them the
  // disseminated share of traffic is still served.
  EXPECT_DOUBLE_EQ(result.baseline_unavailable_fraction, 1.0);
  EXPECT_GT(result.unavailable_fraction, 0.0);
  EXPECT_LT(result.unavailable_fraction,
            result.baseline_unavailable_fraction);
  EXPECT_EQ(result.server_requests, 0u);
  uint64_t proxy_total = 0;
  for (const uint64_t n : result.proxy_requests) proxy_total += n;
  EXPECT_GT(proxy_total, 0u);
}

TEST_F(FailoverTest, TotalOutageMakesEverythingUnavailable) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});
  const auto& topo = workload_->topology();
  for (net::NodeId n = 1; n < topo.num_nodes(); ++n) {
    schedule.Add({net::FaultKind::kNodeOutage, n, start, end});
  }

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  const auto result = Run(config);

  EXPECT_DOUBLE_EQ(result.unavailable_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.baseline_unavailable_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.with_proxies_bytes_hops, 0.0);
  EXPECT_EQ(result.server_requests, 0u);
  for (const uint64_t n : result.proxy_requests) EXPECT_EQ(n, 0u);
}

TEST_F(FailoverTest, FaultReplayIsDeterministicInSeed) {
  net::FaultSchedule schedule;
  const auto [start, end] = FullSpan();
  // A mid-trace server outage plus a cut regional link exercise both the
  // baseline retry loop and the failover chain.
  schedule.Add({net::FaultKind::kServerOutage, 0, end * 0.25, end * 0.5});
  schedule.Add({net::FaultKind::kLinkOutage, 1, end * 0.1, end * 0.2});

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  config.retry.jitter = 0.2;  // jitter draws come from the passed-in Rng
  const auto a = Run(config, 7);
  const auto b = Run(config, 7);
  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_DOUBLE_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
}

}  // namespace
}  // namespace sds::dissem

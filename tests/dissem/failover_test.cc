#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/simulator.h"
#include "net/faults.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sds::dissem {
namespace {

// --- RetryPolicy unit tests -------------------------------------------------

TEST(RetryPolicyTest, BackoffIsExponentialAndCappedWithoutJitter) {
  net::RetryPolicy policy;
  policy.base_backoff_s = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  policy.jitter = 0.0;
  const double expected[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0, 60.0};
  for (uint32_t i = 0; i < 8; ++i) {
    // jitter == 0 must not require (or consume) an Rng.
    EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(i, nullptr), expected[i]) << i;
  }
}

TEST(RetryPolicyTest, JitterStaysInBoundsAndIsDeterministic) {
  net::RetryPolicy policy;
  policy.base_backoff_s = 2.0;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_s = 1000.0;
  policy.jitter = 0.25;
  Rng rng_a(99);
  Rng rng_b(99);
  bool saw_off_center = false;
  for (uint32_t i = 0; i < 6; ++i) {
    const double center = std::min(2.0 * std::pow(3.0, i), 1000.0);
    const double a = policy.BackoffBeforeRetry(i, &rng_a);
    const double b = policy.BackoffBeforeRetry(i, &rng_b);
    EXPECT_DOUBLE_EQ(a, b) << i;  // same stream, same backoff
    EXPECT_GE(a, center * 0.75) << i;
    EXPECT_LT(a, center * 1.25) << i;
    if (std::abs(a - center) > 1e-6 * center) saw_off_center = true;
  }
  EXPECT_TRUE(saw_off_center);
}

// --- Failover ordering in the dissemination simulator -----------------------

class FailoverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  DisseminationResult Run(const DisseminationConfig& config,
                          uint64_t seed = 1) {
    Rng rng(seed);
    return SimulateDissemination(workload_->corpus(), workload_->clean(),
                                 workload_->topology(), 0, config, &rng,
                                 &workload_->generated().updates);
  }

  /// A fault interval covering the whole trace (and its retry tail).
  std::pair<SimTime, SimTime> FullSpan() const {
    return {0.0, workload_->clean().Span() + 30 * kDay};
  }

  /// Runs the config with the audit ledger watching: request/byte
  /// conservation across the failover chain is asserted by the registered
  /// invariants (obs/audit.h) instead of an ad-hoc recount here. No-op
  /// pass-through when the obs layer is compiled out.
  DisseminationResult RunAudited(const DisseminationConfig& config,
                                 uint64_t seed = 1) {
    const bool was_enabled = obs::Enabled();
    obs::SetEnabled(true);
    obs::ResetMetrics();
    DisseminationResult result = Run(config, seed);
    for (const auto& v : obs::CheckAudit("failover_test")) {
      ADD_FAILURE() << v.ToString();
    }
    obs::SetEnabled(was_enabled);
    return result;
  }

  /// Requests landing in any outcome bucket; cross-run equality means two
  /// runs evaluated the same trace. (Within-run conservation is the audit
  /// ledger's job — see RunAudited.)
  static uint64_t TotalAccounted(const DisseminationResult& r) {
    uint64_t total = r.server_requests + r.shielding_overflow_requests +
                     r.unavailable_requests;
    for (const uint64_t n : r.proxy_requests) total += n;
    return total;
  }

  static core::Workload* workload_;
};

core::Workload* FailoverTest::workload_ = nullptr;

TEST_F(FailoverTest, EmptyScheduleIsBitIdenticalToNoSchedule) {
  DisseminationConfig plain;
  plain.num_proxies = 4;
  const auto a = Run(plain);

  net::FaultSchedule empty;
  DisseminationConfig with_empty = plain;
  with_empty.faults = &empty;
  const auto b = Run(with_empty);

  EXPECT_DOUBLE_EQ(a.baseline_bytes_hops, b.baseline_bytes_hops);
  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_DOUBLE_EQ(a.saved_fraction, b.saved_fraction);
  EXPECT_DOUBLE_EQ(a.proxy_hit_fraction, b.proxy_hit_fraction);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(b.unavailable_requests, 0u);
  EXPECT_EQ(b.failover_requests, 0u);
  EXPECT_EQ(b.retry_attempts, 0u);
  EXPECT_DOUBLE_EQ(b.retry_wait_seconds, 0.0);
}

TEST_F(FailoverTest, DeadProxyNodeShiftsItsLoadElsewhere) {
  DisseminationConfig plain;
  plain.num_proxies = 4;
  const auto healthy = RunAudited(plain);
  ASSERT_EQ(healthy.proxy_nodes.size(), 4u);

  // Kill the busiest proxy's node for the whole trace.
  size_t busiest = 0;
  for (size_t p = 1; p < healthy.proxy_requests.size(); ++p) {
    if (healthy.proxy_requests[p] > healthy.proxy_requests[busiest]) {
      busiest = p;
    }
  }
  ASSERT_GT(healthy.proxy_requests[busiest], 0u);
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kNodeOutage, healthy.proxy_nodes[busiest],
                start, end});

  DisseminationConfig faulted = plain;
  faulted.faults = &schedule;
  faulted.retry.max_attempts = 6;
  const auto result = RunAudited(faulted);

  // The dead proxy serves nothing; its former requests fail over to other
  // replicas or the home server rather than vanishing.
  EXPECT_EQ(result.proxy_requests[busiest], 0u);
  EXPECT_GT(result.failover_requests, 0u);
  EXPECT_GT(result.retry_attempts, 0u);
  EXPECT_GT(result.retry_wait_seconds, 0.0);
  EXPECT_EQ(TotalAccounted(result), TotalAccounted(healthy));
}

TEST_F(FailoverTest, ProxiesServeThroughFullServerOutage) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});

  DisseminationConfig config;
  config.num_proxies = 8;
  config.dissemination_fraction = 0.10;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  const auto result = Run(config);

  // Without proxies every request is unavailable; with them the
  // disseminated share of traffic is still served.
  EXPECT_DOUBLE_EQ(result.baseline_unavailable_fraction, 1.0);
  EXPECT_GT(result.unavailable_fraction, 0.0);
  EXPECT_LT(result.unavailable_fraction,
            result.baseline_unavailable_fraction);
  EXPECT_EQ(result.server_requests, 0u);
  uint64_t proxy_total = 0;
  for (const uint64_t n : result.proxy_requests) proxy_total += n;
  EXPECT_GT(proxy_total, 0u);
}

TEST_F(FailoverTest, TotalOutageMakesEverythingUnavailable) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});
  const auto& topo = workload_->topology();
  for (net::NodeId n = 1; n < topo.num_nodes(); ++n) {
    schedule.Add({net::FaultKind::kNodeOutage, n, start, end});
  }

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  const auto result = Run(config);

  EXPECT_DOUBLE_EQ(result.unavailable_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.baseline_unavailable_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.with_proxies_bytes_hops, 0.0);
  EXPECT_EQ(result.server_requests, 0u);
  for (const uint64_t n : result.proxy_requests) EXPECT_EQ(n, 0u);
}

TEST_F(FailoverTest, FaultReplayIsDeterministicInSeed) {
  net::FaultSchedule schedule;
  const auto [start, end] = FullSpan();
  // A mid-trace server outage plus a cut regional link exercise both the
  // baseline retry loop and the failover chain.
  schedule.Add({net::FaultKind::kServerOutage, 0, end * 0.25, end * 0.5});
  schedule.Add({net::FaultKind::kLinkOutage, 1, end * 0.1, end * 0.2});

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  config.retry.jitter = 0.2;  // jitter draws come from the passed-in Rng
  const auto a = Run(config, 7);
  const auto b = Run(config, 7);
  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_DOUBLE_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
}

// --- Self-protection stack and cascade dynamics -----------------------------

class ProtectionTest : public FailoverTest {
 protected:
  /// A load-tracker calibration knob: serving the full request stream
  /// through a single target costs `solo_load` busy-seconds per wall
  /// second. The replay only covers the evaluation half of the trace split
  /// across all targets, so per-entity utilization is a fraction of
  /// `solo_load`; raise it until the busiest windows cross the brownout
  /// threshold.
  net::LoadTrackerConfig TightLoad(double solo_load = 1.25) const {
    const double span = workload_->clean().Span();
    const double n = static_cast<double>(workload_->clean().size());
    net::LoadTrackerConfig load;
    load.window_s = 12.0 * 3600.0;
    load.brownout_duration_s = 4.0 * 3600.0;
    load.utilization_threshold = 0.75;
    load.admission_threshold = 0.55;
    load.service_overhead_s = solo_load * span / n;
    load.service_rate_bytes_per_s = 1e12;  // bytes negligible here
    return load;
  }
};

TEST_F(ProtectionTest, UnarmedProtectionIsBitIdenticalUnderFaults) {
  // A default ProtectionConfig must not change the faulted replay at all:
  // same control flow, same RNG consumption, same numbers.
  net::FaultSchedule schedule;
  const auto [start, end] = FullSpan();
  schedule.Add({net::FaultKind::kServerOutage, 0, end * 0.2, end * 0.4});
  schedule.Add({net::FaultKind::kLinkOutage, 2, end * 0.5, end * 0.6});

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  config.retry.jitter = 0.2;
  const auto a = Run(config, 11);
  DisseminationConfig with_protection = config;
  with_protection.protection = net::ProtectionConfig{};
  const auto b = Run(with_protection, 11);

  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_DOUBLE_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(b.emergent_brownouts, 0u);
  EXPECT_EQ(b.breaker_open_transitions, 0u);
  EXPECT_EQ(b.retries_suppressed_by_budget, 0u);
  EXPECT_EQ(b.shed_replica_requests, 0u);
}

TEST_F(ProtectionTest, CoolTrackerLeavesFaultFreeReplayUnchanged) {
  // Armed but generously provisioned: the tracker observes the whole
  // fault-free replay without tripping, and every pre-existing metric is
  // bit-identical to the plain run.
  DisseminationConfig plain;
  plain.num_proxies = 4;
  const auto a = Run(plain);

  DisseminationConfig tracked = plain;
  tracked.protection.track_load = true;
  tracked.protection.load.service_overhead_s = 1e-9;
  tracked.protection.load.service_rate_bytes_per_s = 1e15;
  const auto b = Run(tracked);

  EXPECT_DOUBLE_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_DOUBLE_EQ(a.saved_fraction, b.saved_fraction);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(b.unavailable_requests, 0u);
  EXPECT_EQ(b.emergent_brownouts, 0u);
}

TEST_F(ProtectionTest, RetryStormPinsServerAndProtectionsContainIt) {
  // Calibrate the home server close to — but under — the brownout
  // threshold; a bursty window tips it over. No scheduled fault exists: the
  // overload is emergent. From then on the unprotected population's retries
  // charge overhead against the browned-out server faster than a window
  // can drain, so the brownout re-arms indefinitely and every server-only
  // document becomes unavailable. The protected population opens its
  // breakers instead of hammering, the server cools down between episodes,
  // and service resumes.
  DisseminationConfig unprotected;
  unprotected.num_proxies = 2;
  unprotected.retry.max_attempts = 6;
  unprotected.protection.track_load = true;
  unprotected.protection.load = TightLoad(8.0);
  const auto off = RunAudited(unprotected);
  ASSERT_GT(off.emergent_brownouts, 0u);
  ASSERT_GT(off.unavailable_requests, 0u);

  DisseminationConfig protected_config = unprotected;
  protected_config.protection.circuit_breakers = true;
  protected_config.protection.breaker.failure_threshold = 3;
  // Cooldown long enough that half-open probes from every client subnet
  // cannot by themselves keep a 12h window above the trip threshold.
  protected_config.protection.breaker.cooldown_s = 6.0 * 3600.0;
  protected_config.protection.retry_budget = true;
  protected_config.protection.admission_control = true;
  const auto on = RunAudited(protected_config);

  // The full stack contains the cascade: strictly better availability,
  // strictly fewer retry attempts (storms are cut off), and no more
  // brownout episodes than the unprotected run.
  EXPECT_LT(on.unavailable_requests, off.unavailable_requests);
  EXPECT_LT(on.retry_attempts, off.retry_attempts);
  EXPECT_LE(on.emergent_brownouts, off.emergent_brownouts);
  EXPECT_GT(on.breaker_open_transitions, 0u);
  EXPECT_EQ(TotalAccounted(on), TotalAccounted(off));
}

TEST_F(ProtectionTest, AdmissionControlShedsOffRouteReplicaService) {
  // With the home server down for the whole trace, non-disseminated
  // traffic leans on off-route replicas; an admission threshold of zero
  // sheds all of that low-priority service once a target has any load.
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});

  DisseminationConfig config;
  config.num_proxies = 8;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  config.protection.track_load = true;
  config.protection.load.service_overhead_s = 1e-9;
  config.protection.load.service_rate_bytes_per_s = 1e15;
  config.protection.load.admission_threshold = 0.0;
  config.protection.admission_control = true;
  const auto shed = Run(config);
  EXPECT_GT(shed.shed_replica_requests, 0u);

  DisseminationConfig no_admission = config;
  no_admission.protection.admission_control = false;
  const auto open = Run(no_admission);
  EXPECT_EQ(open.shed_replica_requests, 0u);
  // Shedding off-route service trades availability for proxy headroom.
  EXPECT_GE(shed.unavailable_requests, open.unavailable_requests);
}

TEST_F(ProtectionTest, RetryBudgetSuppressesStormRetries) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, end * 0.25, end * 0.75});

  DisseminationConfig config;
  config.num_proxies = 2;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  const auto unbudgeted = Run(config);
  ASSERT_GT(unbudgeted.retry_attempts, 0u);

  DisseminationConfig budgeted = config;
  budgeted.protection.retry_budget = true;
  budgeted.protection.budget.max_retry_ratio = 0.0;
  budgeted.protection.budget.min_retries_per_window = 0;
  const auto result = Run(budgeted);

  // A zero budget suppresses every retry: each failed request costs one
  // attempt instead of a storm.
  EXPECT_GT(result.retries_suppressed_by_budget, 0u);
  EXPECT_LT(result.retry_attempts, unbudgeted.retry_attempts);
  EXPECT_EQ(result.emergent_brownouts, 0u);  // tracker not armed
}

TEST_F(ProtectionTest, OpenBreakersFailFastWithoutBurningTimeouts) {
  const auto [start, end] = FullSpan();
  net::FaultSchedule schedule;
  schedule.Add({net::FaultKind::kServerOutage, 0, start, end});
  const auto& topo = workload_->topology();
  for (net::NodeId n = 1; n < topo.num_nodes(); ++n) {
    schedule.Add({net::FaultKind::kNodeOutage, n, start, end});
  }

  DisseminationConfig config;
  config.num_proxies = 4;
  config.faults = &schedule;
  config.retry.max_attempts = 6;
  const auto raw = Run(config);
  ASSERT_DOUBLE_EQ(raw.unavailable_fraction, 1.0);

  DisseminationConfig braked = config;
  braked.protection.circuit_breakers = true;
  braked.protection.breaker.failure_threshold = 1;
  braked.protection.breaker.cooldown_s = 1e12;  // never probes again
  const auto result = Run(braked);

  // Everything is still unavailable, but after the breakers open the
  // chain is skipped outright: far fewer attempts and wait seconds.
  EXPECT_DOUBLE_EQ(result.unavailable_fraction, 1.0);
  EXPECT_GT(result.fast_failed_requests, 0u);
  EXPECT_GT(result.breaker_open_transitions, 0u);
  EXPECT_LT(result.retry_attempts, raw.retry_attempts);
  EXPECT_LT(result.retry_wait_seconds, raw.retry_wait_seconds);
}

TEST_F(ProtectionTest, ServiceTimeSummaryOnlyWhenCollected) {
  DisseminationConfig config;
  config.num_proxies = 4;
  const auto off = Run(config);
  EXPECT_DOUBLE_EQ(off.mean_service_s, 0.0);
  EXPECT_DOUBLE_EQ(off.p99_service_s, 0.0);

  config.collect_service_times = true;
  const auto on = Run(config);
  EXPECT_GT(on.mean_service_s, 0.0);
  EXPECT_GT(on.p50_service_s, 0.0);
  EXPECT_GE(on.p99_service_s, on.p50_service_s);
  EXPECT_GT(on.served_bytes, 0.0);
  // Collection must not perturb the replay itself.
  EXPECT_DOUBLE_EQ(on.with_proxies_bytes_hops, off.with_proxies_bytes_hops);
  EXPECT_EQ(on.proxy_requests, off.proxy_requests);
}

}  // namespace
}  // namespace sds::dissem

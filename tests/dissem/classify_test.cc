#include "dissem/classify.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "dissem/popularity.h"
#include "util/sim_time.h"

namespace sds::dissem {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
    const auto pops =
        AnalyzeAllServers(workload_->corpus(), workload_->clean());
    const uint32_t days =
        static_cast<uint32_t>(workload_->clean().Span() / kDay) + 1;
    result_ = new DocumentClassification(
        ClassifyDocuments(workload_->corpus(), pops,
                          workload_->generated().updates, days));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete workload_;
    result_ = nullptr;
    workload_ = nullptr;
  }

  static core::Workload* workload_;
  static DocumentClassification* result_;
};

core::Workload* ClassifyTest::workload_ = nullptr;
DocumentClassification* ClassifyTest::result_ = nullptr;

TEST_F(ClassifyTest, CountsSumToCorpus) {
  EXPECT_EQ(result_->remotely_popular + result_->locally_popular +
                result_->globally_popular + result_->unaccessed,
            workload_->corpus().size());
}

TEST_F(ClassifyTest, AllClassesPresent) {
  EXPECT_GT(result_->remotely_popular, 0u);
  EXPECT_GT(result_->locally_popular, 0u);
  EXPECT_GT(result_->globally_popular, 0u);
}

TEST_F(ClassifyTest, InferenceMatchesGeneratorIntent) {
  // The analyzer should recover the generator's audience classes far
  // better than chance: among documents classified remotely-popular, the
  // dominant ground-truth class must be kRemote, and similarly for local.
  const auto& corpus = workload_->corpus();
  const auto pops = AnalyzeAllServers(workload_->corpus(), workload_->clean());
  int remote_correct = 0, remote_total = 0;
  int local_correct = 0, local_total = 0;
  for (trace::DocumentId id = 0; id < corpus.size(); ++id) {
    // Restrict to documents with enough accesses for the remote-to-local
    // ratio to be statistically meaningful.
    if (pops[corpus.doc(id).server].stats[id].total_requests() < 5) {
      continue;
    }
    if (result_->pop_class[id] == PopularityClass::kRemotelyPopular) {
      ++remote_total;
      if (corpus.doc(id).audience == trace::AudienceClass::kRemote ||
          corpus.doc(id).audience == trace::AudienceClass::kGlobal) {
        ++remote_correct;
      }
    }
    if (result_->pop_class[id] == PopularityClass::kLocallyPopular) {
      ++local_total;
      if (corpus.doc(id).audience == trace::AudienceClass::kLocal) {
        ++local_correct;
      }
    }
  }
  // Remotely popular documents are rare on a small workload; only check
  // the precision when there are any well-supported ones.
  if (remote_total > 0) {
    EXPECT_GT(remote_correct, remote_total * 0.7);
  }
  ASSERT_GT(local_total, 0);
  EXPECT_GT(local_correct, local_total * 0.7);
}

TEST_F(ClassifyTest, UpdateRatesMatchPaperShape) {
  // Locally popular documents update noticeably more often on average
  // (paper: ~2%/day vs < 0.5%/day).
  const double local =
      result_->MeanUpdateRate(PopularityClass::kLocallyPopular);
  const double remote =
      result_->MeanUpdateRate(PopularityClass::kRemotelyPopular);
  EXPECT_GT(local, remote);
}

TEST_F(ClassifyTest, MutableSubsetIsSmall) {
  EXPECT_GT(result_->mutable_docs, 0u);
  EXPECT_LT(result_->mutable_docs, workload_->corpus().size() / 4);
}

TEST_F(ClassifyTest, UpdateRatesConsistentWithLog) {
  std::vector<double> manual(workload_->corpus().size(), 0.0);
  for (const auto& u : workload_->generated().updates) manual[u.doc] += 1.0;
  const uint32_t days =
      static_cast<uint32_t>(workload_->clean().Span() / kDay) + 1;
  for (size_t i = 0; i < manual.size(); ++i) {
    EXPECT_NEAR(result_->updates_per_day[i], manual[i] / days, 1e-12);
  }
}

TEST(ClassifyThresholdTest, CustomThresholds) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const auto pops = AnalyzeAllServers(workload.corpus(), workload.clean());
  ClassificationConfig loose;
  loose.remote_threshold = 0.99;
  loose.local_threshold = 0.01;
  const auto loose_result = ClassifyDocuments(
      workload.corpus(), pops, workload.generated().updates, 14, loose);
  ClassificationConfig strict;
  strict.remote_threshold = 0.55;
  strict.local_threshold = 0.45;
  const auto strict_result = ClassifyDocuments(
      workload.corpus(), pops, workload.generated().updates, 14, strict);
  // Widening the "global" band must grow the global class.
  EXPECT_GT(loose_result.globally_popular, strict_result.globally_popular);
}

TEST(ClassifyNamesTest, Strings) {
  EXPECT_STREQ(PopularityClassToString(PopularityClass::kRemotelyPopular),
               "remotely-popular");
  EXPECT_STREQ(PopularityClassToString(PopularityClass::kUnaccessed),
               "unaccessed");
}

}  // namespace
}  // namespace sds::dissem

/// Asserts that the paper-scale synthetic workload actually reproduces the
/// statistical properties the reproduction depends on (DESIGN.md §2's
/// substitution argument). These run at paper scale and are the slowest
/// tests in the suite; they are what licenses every other experiment to
/// claim "shape holds".

#include <gtest/gtest.h>

#include "core/fidelity.h"
#include "core/workload.h"

namespace sds::core {
namespace {

class FidelityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(MakeWorkload(PaperScaleConfig()));
    report_ = new FidelityReport(ComputeFidelityReport(*workload_));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete workload_;
    report_ = nullptr;
    workload_ = nullptr;
  }
  static Workload* workload_;
  static FidelityReport* report_;
};

Workload* FidelityTest::workload_ = nullptr;
FidelityReport* FidelityTest::report_ = nullptr;

TEST_F(FidelityTest, TraceVolumeInPaperBallpark) {
  // Paper: 205,925 accesses, 8,474 clients, 20k+ sessions / ~90 days.
  // The synthetic default uses 2,000 clients; volumes scale accordingly.
  EXPECT_GT(report_->accesses, 50000u);
  EXPECT_LT(report_->accesses, 500000u);
  EXPECT_GT(report_->sessions, 8000u);
  EXPECT_NEAR(report_->days, 90.0, 2.0);
  EXPECT_GT(report_->requests_per_session, 3.0);
  EXPECT_LT(report_->requests_per_session, 20.0);
}

TEST_F(FidelityTest, PopularityConcentrationMatchesFigure1) {
  // Paper: 69% at 0.5% of bytes, 91% at 10%.
  EXPECT_NEAR(report_->top_half_percent_coverage, 0.69, 0.12);
  EXPECT_GT(report_->top_ten_percent_coverage, 0.85);
  // Roughly half the documents are ever accessed (paper: 974 of 2000+,
  // 656 remotely).
  EXPECT_GT(report_->docs_remotely_accessed, 300u);
  EXPECT_LT(report_->docs_remotely_accessed,
            report_->docs_total);
  EXPECT_GT(report_->accessed_bytes_fraction, 0.4);
}

TEST_F(FidelityTest, ClassSharesMatchSection2) {
  // Paper: ~10% / 52% / 37%. Locally popular must dominate; remotely
  // popular must be the smallest class.
  EXPECT_GT(report_->local_class_share, 0.40);
  EXPECT_GT(report_->global_class_share, 0.15);
  EXPECT_LT(report_->remote_class_share, report_->global_class_share);
  EXPECT_LT(report_->remote_class_share, report_->local_class_share);
  EXPECT_NEAR(report_->remote_class_share + report_->local_class_share +
                  report_->global_class_share,
              1.0, 1e-6);
}

TEST_F(FidelityTest, UpdateRatesMatchSection2) {
  // Paper: ~2%/day for locally popular, <0.5%/day otherwise; at minimum
  // an unambiguous ordering with locals well above the rest.
  EXPECT_GT(report_->local_update_rate, 0.01);
  EXPECT_LT(report_->other_update_rate, report_->local_update_rate);
}

TEST_F(FidelityTest, DependencyStructureMatchesFigure4) {
  EXPECT_GT(report_->dependency_pairs, 500u);
  EXPECT_GE(report_->peaks_detected, 3u);
  // The embedding peak sits at the right edge.
  EXPECT_GT(report_->rightmost_peak, 0.85);
}

}  // namespace
}  // namespace sds::core

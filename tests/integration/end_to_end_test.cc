/// End-to-end pipeline tests: workload synthesis -> preprocessing ->
/// analysis -> both protocols, with cross-module consistency checks.

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "dissem/allocation.h"
#include "dissem/expfit.h"
#include "dissem/popularity.h"
#include "dissem/simulator.h"
#include "spec/simulator.h"
#include "trace/clf.h"
#include "trace/sessionizer.h"
#include "util/rng.h"

namespace sds {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static core::Workload* workload_;
};

core::Workload* EndToEndTest::workload_ = nullptr;

TEST_F(EndToEndTest, WorkloadIsDeterministic) {
  const core::Workload again = core::MakeWorkload(core::SmallConfig());
  ASSERT_EQ(again.clean().size(), workload_->clean().size());
  for (size_t i = 0; i < again.clean().size(); i += 97) {
    EXPECT_EQ(again.clean().requests[i].doc,
              workload_->clean().requests[i].doc);
    EXPECT_EQ(again.clean().requests[i].time,
              workload_->clean().requests[i].time);
  }
}

TEST_F(EndToEndTest, FilterStatsAddUp) {
  const auto& stats = workload_->filter_stats();
  EXPECT_EQ(stats.kept, workload_->clean().size());
  EXPECT_EQ(stats.kept + stats.dropped_not_found + stats.dropped_script,
            workload_->generated().trace.size());
}

TEST_F(EndToEndTest, SessionsRoughlyMatchGeneratorCount) {
  // Sessionizing the trace with a 30-minute timeout should roughly recover
  // the number of generated sessions (browser caching removes some
  // sessions entirely, and back-to-back sessions merge).
  const uint64_t measured =
      trace::CountSegments(workload_->clean(), 30.0 * kMinute);
  const uint64_t generated = workload_->generated().num_sessions;
  EXPECT_GT(measured, generated / 3);
  EXPECT_LT(measured, generated * 2);
}

TEST_F(EndToEndTest, CleanTraceThroughClfRoundTrips) {
  const auto lines = TraceToClf(workload_->clean(), workload_->corpus());
  const auto round = trace::ClfToTrace(lines, workload_->corpus());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().size(), workload_->clean().size());
}

TEST_F(EndToEndTest, LambdaFitFeedsAllocationSensibly) {
  // Fit lambda on the single-server workload, then pretend 10 such servers
  // share a proxy and check the symmetric-allocation storage matches the
  // empirical storage needed for the same hit fraction.
  const auto pop =
      dissem::AnalyzeServer(workload_->corpus(), workload_->clean(), 0);
  const auto fit = dissem::FitExponentialPopularity(pop, workload_->corpus());
  ASSERT_GT(fit.lambda, 0.0);
  const double alpha = 0.8;
  const double per_server =
      dissem::SymmetricStorageForHitFraction(10, fit.lambda, alpha) / 10.0;
  const double empirical_h =
      pop.EmpiricalH(per_server, workload_->corpus());
  // Model and measurement agree within a generous band.
  EXPECT_NEAR(empirical_h, alpha, 0.25);
}

TEST_F(EndToEndTest, BothProtocolsComposeOnOneWorkload) {
  // Run dissemination and speculation on the same workload: the savings
  // are complementary (one cuts bytes x hops, the other server requests).
  Rng rng(5);
  dissem::DisseminationConfig dconfig;
  dconfig.num_proxies = 4;
  const auto dresult = SimulateDissemination(
      workload_->corpus(), workload_->clean(), workload_->topology(), 0,
      dconfig, &rng, &workload_->generated().updates);
  EXPECT_GT(dresult.saved_fraction, 0.0);

  spec::SpeculationSimulator sim(&workload_->corpus(), &workload_->clean());
  spec::SpeculationConfig sconfig = core::BaselineSpecConfig();
  sconfig.policy.threshold = 0.3;
  const auto metrics = sim.Evaluate(sconfig);
  EXPECT_LT(metrics.server_load_ratio, 1.0);
}

TEST_F(EndToEndTest, MultiServerClusterAllocationPipeline) {
  const core::Workload cluster =
      core::MakeWorkload(core::ClusterConfig(/*num_servers=*/4));
  const auto pops =
      dissem::AnalyzeAllServers(cluster.corpus(), cluster.clean());
  std::vector<dissem::ServerDemand> demands;
  for (const auto& pop : pops) {
    const auto fit = dissem::FitExponentialPopularity(pop, cluster.corpus());
    demands.push_back({pop.remote_bytes_per_day, fit.lambda});
  }
  // Request volume skew must show up in R_i.
  EXPECT_GT(demands[0].rate, demands[3].rate);

  const double budget = 0.2 * cluster.corpus().TotalBytes();
  const auto alloc = dissem::AllocateExponential(demands, budget);
  double total = 0.0;
  for (const double b : alloc) total += b;
  EXPECT_NEAR(total, budget, budget * 1e-6);

  // The closed-form allocation must beat or match naive equal split and
  // the empirical greedy must be at least as good as the model predicts
  // on its own training data.
  const std::vector<double> equal(4, budget / 4.0);
  EXPECT_GE(dissem::HitFraction(demands, alloc),
            dissem::HitFraction(demands, equal) - 1e-9);

  const auto greedy = dissem::AllocateGreedyEmpirical(
      pops, cluster.corpus(), budget);
  EXPECT_GT(greedy.hit_fraction, 0.3);
  EXPECT_LE(greedy.used_bytes, budget);
}

TEST_F(EndToEndTest, GreedyEmpiricalExcludesMutable) {
  const auto pops =
      dissem::AnalyzeAllServers(workload_->corpus(), workload_->clean());
  std::vector<bool> is_mutable(workload_->corpus().size(), false);
  // Mark the top documents mutable; they must not be chosen.
  const auto unrestricted = dissem::AllocateGreedyEmpirical(
      pops, workload_->corpus(), 1e6);
  ASSERT_FALSE(unrestricted.docs.empty());
  for (size_t i = 0; i < 5 && i < unrestricted.docs.size(); ++i) {
    is_mutable[unrestricted.docs[i]] = true;
  }
  const auto restricted = dissem::AllocateGreedyEmpirical(
      pops, workload_->corpus(), 1e6, /*exclude_mutable=*/true, &is_mutable);
  for (const auto doc : restricted.docs) {
    EXPECT_FALSE(is_mutable[doc]);
  }
  EXPECT_LE(restricted.hit_fraction, unrestricted.hit_fraction + 1e-9);
}

}  // namespace
}  // namespace sds

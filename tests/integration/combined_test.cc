#include "core/combined.h"

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "util/rng.h"

namespace sds::core {
namespace {

class CombinedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(MakeWorkload(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static CombinedResult Run(uint32_t proxies, double tp) {
    CombinedConfig config;
    config.dissemination.num_proxies = proxies;
    config.dissemination.dissemination_fraction = 0.10;
    config.speculation = BaselineSpecConfig();
    config.speculation.policy.threshold = tp;
    Rng rng(3);
    return SimulateCombined(*workload_, config, &rng);
  }

  static Workload* workload_;
};

Workload* CombinedTest::workload_ = nullptr;

TEST_F(CombinedTest, RatiosWithinBounds) {
  const CombinedResult r = Run(4, 0.3);
  EXPECT_GT(r.bytes_hops_ratio, 0.0);
  EXPECT_GT(r.server_load_ratio, 0.0);
  EXPECT_GT(r.service_time_ratio, 0.0);
  EXPECT_GE(r.proxy_share, 0.0);
  EXPECT_LE(r.proxy_share, 1.0);
  EXPECT_GE(r.cache_hit_share, 0.0);
  EXPECT_LE(r.cache_hit_share, 1.0);
}

TEST_F(CombinedTest, CombinedBeatsPlainOnEveryAxis) {
  const CombinedResult r = Run(4, 0.3);
  EXPECT_LT(r.server_load_ratio, 1.0);
  EXPECT_LT(r.service_time_ratio, 1.0);
  // bytes x hops can exceed 1 only with very aggressive speculation; at
  // Tp = 0.3 the proxy shortcuts dominate the extra pushed bytes.
  EXPECT_LT(r.bytes_hops_ratio, 1.0);
}

TEST_F(CombinedTest, CombinedLoadBelowEitherAlone) {
  const CombinedResult dissem_only = Run(4, 1.01);  // Tp > 1: no pushes
  const CombinedResult spec_only = Run(0, 0.3);     // no proxies
  const CombinedResult both = Run(4, 0.3);
  EXPECT_LT(both.server_load_ratio, dissem_only.server_load_ratio);
  EXPECT_LT(both.server_load_ratio, spec_only.server_load_ratio + 0.02);
}

TEST_F(CombinedTest, NoProxiesMeansNoProxyShare) {
  const CombinedResult r = Run(0, 0.3);
  EXPECT_DOUBLE_EQ(r.proxy_share, 0.0);
}

TEST_F(CombinedTest, SpeculationRaisesCacheHits) {
  const CombinedResult quiet = Run(4, 1.01);
  const CombinedResult pushy = Run(4, 0.2);
  EXPECT_GT(pushy.cache_hit_share, quiet.cache_hit_share);
}

}  // namespace
}  // namespace sds::core

/// Shape tests for every paper artefact runner: each experiment must
/// reproduce the qualitative result the paper reports (who wins, rough
/// factors, crossovers) on a small workload.

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"

namespace sds::core {
namespace {

class ExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(MakeWorkload(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* ExperimentsTest::workload_ = nullptr;

TEST_F(ExperimentsTest, Fig1PopularityIsSkewed) {
  const Fig1Result result = RunFig1(*workload_);
  ASSERT_FALSE(result.cumulative_requests.empty());
  // Strong concentration: top 10% of bytes covers over half the requests,
  // and the cumulative curve is monotone ending at ~1.
  EXPECT_GT(result.top_ten_percent_coverage, 0.5);
  EXPECT_GT(result.top_ten_percent_coverage,
            result.top_half_percent_coverage);
  for (size_t i = 1; i < result.cumulative_requests.size(); ++i) {
    EXPECT_GE(result.cumulative_requests[i],
              result.cumulative_requests[i - 1] - 1e-9);
  }
  EXPECT_NEAR(result.cumulative_requests.back(), 1.0, 1e-6);
  EXPECT_LT(result.accessed_docs, result.total_docs);
  EXPECT_EQ(result.ToTable().num_columns(), 4u);
}

TEST_F(ExperimentsTest, Tab1ClassesMatchPaperShape) {
  const Tab1Result result = RunTab1(*workload_);
  const auto& c = result.classification;
  // Paper: locally popular is the largest class; remotely popular the
  // smallest of the three; locals update most.
  EXPECT_GT(c.locally_popular, c.remotely_popular);
  EXPECT_GT(c.globally_popular, 0u);
  EXPECT_GT(result.local_mean_update_rate, result.remote_mean_update_rate);
  EXPECT_EQ(result.ToTable().num_rows(), 4u);
}

TEST(ExperimentsMathTest, Fig2AllocationShape) {
  const Fig2Result result = RunFig2(10);
  ASSERT_GT(result.lambda_ratio.size(), 10u);
  const size_t n = result.lambda_ratio.size();
  // With B_0 = 10/lambda_i and n = 10, B_0 is *not* >> n/lambda_i, so both
  // curves peak at an intermediate lambda_j (the paper's "if the storage
  // capacity is not big enough, intermediate values are favored"); the lax
  // curve dominates the tight one and peaks further left (more uniform
  // servers favored as storage grows).
  auto argmax = [&](const std::vector<double>& v) {
    size_t best = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] > v[best]) best = i;
    }
    return best;
  };
  const size_t tight_peak = argmax(result.tight_allocation);
  const size_t lax_peak = argmax(result.lax_allocation);
  EXPECT_GT(tight_peak, 0u);
  EXPECT_LT(tight_peak, n - 1);
  EXPECT_LE(lax_peak, tight_peak);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(result.lax_allocation[i], result.tight_allocation[i] - 1e-9);
    EXPECT_GE(result.tight_allocation[i], 0.0);
  }
  // At lambda_j = lambda_i the allocation is exactly B_0 / n.
  size_t at_one = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(result.lambda_ratio[i] - 1.0) <
        std::abs(result.lambda_ratio[at_one] - 1.0)) {
      at_one = i;
    }
  }
  EXPECT_NEAR(result.lax_allocation[at_one], 1.0, 0.15);
}

TEST(ExperimentsMathTest, Tab2WorkedNumbers) {
  const Tab2Result result = RunTab2();
  EXPECT_NEAR(result.storage_10_servers_90pct / (1024.0 * 1024.0), 36.0, 1.5);
  EXPECT_NEAR(result.shield_100_servers_500mb, 0.96, 0.01);
}

TEST_F(ExperimentsTest, Fig3SavingsGrowAndSaturate) {
  const Fig3Result result = RunFig3(*workload_, /*max_proxies=*/8);
  ASSERT_EQ(result.num_proxies.size(), 8u);
  // More proxies never hurt (within noise), 10% curve dominates 4% curve.
  EXPECT_GT(result.saved_top10.back(), result.saved_top10.front() - 0.02);
  for (size_t i = 0; i < result.num_proxies.size(); ++i) {
    EXPECT_GE(result.saved_top10[i], result.saved_top4[i] - 0.03) << i;
    EXPECT_GE(result.saved_top10[i], 0.0);
    EXPECT_LE(result.saved_top10[i], 1.0);
  }
  // Saturation: the marginal gain of the last proxy is smaller than that
  // of the first.
  const double first_gain = result.saved_top10[0];
  const double last_gain =
      result.saved_top10.back() - result.saved_top10[result.num_proxies.size() - 2];
  EXPECT_GT(first_gain, last_gain);
  // Storage grows linearly with proxies.
  EXPECT_NEAR(result.storage_top10.back() / result.storage_top10.front(),
              8.0, 0.5);
}

TEST_F(ExperimentsTest, Fig4HistogramHasEmbeddingPeakAndInversePeaks) {
  const Fig4Result result = RunFig4(*workload_, 5.0, 40, 14);
  EXPECT_GT(result.total_pairs, 100u);
  ASSERT_FALSE(result.peak_centers.empty());
  // The rightmost peak must be near p = 1 (embedding dependencies).
  EXPECT_GT(result.peak_centers.back(), 0.8);
  // And there must be at least one peak below 0.6 (traversal, ~1/k).
  EXPECT_LT(result.peak_centers.front(), 0.6);
}

TEST_F(ExperimentsTest, Fig5And6ShapesMatchPaper) {
  const Fig5Result result =
      RunFig5(*workload_, {1.0, 0.8, 0.5, 0.3, 0.15});
  ASSERT_EQ(result.points.size(), 5u);
  // Traffic grows monotonically as Tp drops.
  for (size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GE(result.points[i].metrics.bandwidth_ratio,
              result.points[i - 1].metrics.bandwidth_ratio - 1e-6);
    // All reductions stay in [0, 1].
    EXPECT_LE(result.points[i].metrics.server_load_ratio, 1.0 + 1e-6);
    EXPECT_GT(result.points[i].metrics.server_load_ratio, 0.0);
  }
  // Embedding-only speculation (Tp = 1) is nearly free.
  EXPECT_LT(result.points[0].metrics.extra_traffic, 0.05);
  // Aggressive speculation cuts load by a large factor.
  EXPECT_LT(result.points.back().metrics.server_load_ratio, 0.8);
  // Diminishing returns: load reduction per unit extra traffic shrinks.
  const auto& mid = result.points[2].metrics;
  const auto& end = result.points.back().metrics;
  const double mid_eff =
      (1.0 - mid.server_load_ratio) / std::max(0.01, mid.extra_traffic);
  const double end_eff =
      (1.0 - end.server_load_ratio) / std::max(0.01, end.extra_traffic);
  EXPECT_GT(mid_eff, end_eff);
  EXPECT_EQ(result.ToTable().num_rows(), 5u);
  EXPECT_EQ(result.ToFig6Table().num_rows(), 5u);
}

TEST_F(ExperimentsTest, ExpMaxSizeHasInteriorSweetSpot) {
  const ExpMaxSizeResult result = RunExpMaxSize(*workload_, 0.2);
  ASSERT_GE(result.rows.size(), 4u);
  // Traffic grows with MaxSize; unlimited uses the most.
  EXPECT_LT(result.rows.front().metrics.bandwidth_ratio,
            result.rows.back().metrics.bandwidth_ratio + 1e-6);
  // Small MaxSize keeps most of the load reduction at a fraction of the
  // traffic (the paper's "speculation pays off for small documents").
  const auto& small = result.rows[3].metrics;   // 15 KB
  const auto& unlimited = result.rows.back().metrics;
  EXPECT_LT(small.extra_traffic, unlimited.extra_traffic);
  EXPECT_LT(small.server_load_ratio, 1.0);
}

TEST_F(ExperimentsTest, ExpClientCachingShapes) {
  const ExpClientCachingResult result = RunExpClientCaching(*workload_, 0.25);
  ASSERT_EQ(result.rows.size(), 4u);
  // Without any cache, pushed documents cannot be retained, so speculation
  // is neutral (ratio ~1). Under every *caching* model gains exist.
  EXPECT_NEAR(result.rows[0].metrics.server_load_ratio, 1.0, 0.01);
  for (size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_LT(result.rows[i].metrics.server_load_ratio, 1.0)
        << result.rows[i].label;
  }
}

TEST_F(ExperimentsTest, ExpCooperativeSavesBandwidth) {
  const ExpCooperativeResult result = RunExpCooperative(*workload_);
  ASSERT_EQ(result.rows.size(), 6u);
  for (size_t i = 0; i + 1 < result.rows.size(); i += 2) {
    const auto& blind = result.rows[i];
    const auto& coop = result.rows[i + 1];
    ASSERT_FALSE(blind.cooperative);
    ASSERT_TRUE(coop.cooperative);
    EXPECT_LE(coop.metrics.bandwidth_ratio,
              blind.metrics.bandwidth_ratio + 1e-6);
  }
}

TEST_F(ExperimentsTest, ExpPrefetchModesAllHelp) {
  const ExpPrefetchResult result = RunExpPrefetch(*workload_, 0.25);
  ASSERT_EQ(result.rows.size(), 4u);
  for (const auto& row : result.rows) {
    EXPECT_LT(row.metrics.miss_rate_ratio, 1.0);
  }
  // Server push covers newly traversed documents, so it beats pure
  // client-side prefetching on miss rate; server hints match push on miss
  // rate (same candidates reach the cache) without duplicate bytes.
  EXPECT_LT(result.rows[0].metrics.miss_rate_ratio,
            result.rows[2].metrics.miss_rate_ratio);
  EXPECT_NEAR(result.rows[1].metrics.miss_rate_ratio,
              result.rows[0].metrics.miss_rate_ratio, 0.1);
  EXPECT_LE(result.rows[1].metrics.bandwidth_ratio,
            result.rows[0].metrics.bandwidth_ratio + 1e-6);
}

TEST_F(ExperimentsTest, ExpUpdateCycleStaleModelsDegrade) {
  const ExpUpdateCycleResult result = RunExpUpdateCycle(*workload_, 0.25);
  ASSERT_GE(result.rows.size(), 3u);
  // D = 1 is the reference; the D = 60 row (never re-estimated within a
  // 14-day trace) must not be better than D = 1.
  EXPECT_GE(result.MeanDegradation(2), -0.02);
}

}  // namespace
}  // namespace sds::core

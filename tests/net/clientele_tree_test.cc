#include "net/clientele_tree.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::net {
namespace {

struct Fixture {
  Fixture() {
    TopologyConfig config;
    config.regions = 3;
    config.orgs_per_region = 2;
    config.subnets_per_org = 2;
    const uint32_t n = 60;
    std::vector<bool> remote(n);
    for (uint32_t c = 0; c < n; ++c) remote[c] = c % 4 != 0;
    Rng rng(1);
    topology = std::make_unique<Topology>(
        Topology::Generate(config, n, remote, 1, &rng));

    // Synthetic trace: every remote client issues two requests.
    trace.num_clients = n;
    for (uint32_t c = 0; c < n; ++c) {
      for (int k = 0; k < 2; ++k) {
        trace::Request r;
        r.time = c * 10.0 + k;
        r.client = c;
        r.doc = 0;
        r.server = 0;
        r.bytes = 1000;
        r.remote_client = remote[c];
        trace.requests.push_back(r);
      }
    }
    this->remote = remote;
  }

  std::unique_ptr<Topology> topology;
  trace::Trace trace;
  std::vector<bool> remote;
};

TEST(ClienteleTreeTest, OnlyRemoteTrafficCounted) {
  const Fixture f;
  const ClienteleTree tree = BuildClienteleTree(*f.topology, f.trace, 0);
  uint64_t remote_requests = 0;
  for (uint32_t c = 0; c < f.trace.num_clients; ++c) {
    if (f.remote[c]) remote_requests += 2;
  }
  uint64_t tree_requests = 0;
  for (const auto& leaf : tree.leaves) tree_requests += leaf.requests;
  EXPECT_EQ(tree_requests, remote_requests);
  EXPECT_EQ(tree.total_bytes, remote_requests * 1000);
}

TEST(ClienteleTreeTest, PathsStartAtServer) {
  const Fixture f;
  const ClienteleTree tree = BuildClienteleTree(*f.topology, f.trace, 0);
  const NodeId server_node = f.topology->server_node(0);
  for (const auto& leaf : tree.leaves) {
    ASSERT_FALSE(leaf.path_from_server.empty());
    EXPECT_EQ(leaf.path_from_server.front(), server_node);
    EXPECT_EQ(leaf.path_from_server.back(), leaf.node);
  }
}

TEST(ClienteleTreeTest, BytesHopsMatchesManualSum) {
  const Fixture f;
  const ClienteleTree tree = BuildClienteleTree(*f.topology, f.trace, 0);
  uint64_t manual = 0;
  const NodeId server_node = f.topology->server_node(0);
  for (const auto& r : f.trace.requests) {
    if (!r.remote_client) continue;
    manual += r.bytes *
              f.topology->HopCount(f.topology->client_node(r.client),
                                   server_node);
  }
  EXPECT_EQ(tree.total_bytes_hops, manual);
}

TEST(ClienteleTreeTest, InteriorNodesExcludeServer) {
  const Fixture f;
  const ClienteleTree tree = BuildClienteleTree(*f.topology, f.trace, 0);
  const NodeId server_node = f.topology->server_node(0);
  EXPECT_FALSE(tree.interior_nodes.empty());
  for (const NodeId n : tree.interior_nodes) {
    EXPECT_NE(n, server_node);
  }
}

TEST(ClienteleTreeTest, NoiseRequestsIgnored) {
  Fixture f;
  trace::Request bad;
  bad.time = 0.5;
  bad.client = 1;
  bad.doc = trace::kInvalidDocument;
  bad.server = 0;
  bad.bytes = 99999;
  bad.kind = trace::RequestKind::kNotFound;
  bad.remote_client = true;
  f.trace.requests.push_back(bad);
  const ClienteleTree with_noise = BuildClienteleTree(*f.topology, f.trace, 0);
  f.trace.requests.pop_back();
  const ClienteleTree without = BuildClienteleTree(*f.topology, f.trace, 0);
  EXPECT_EQ(with_noise.total_bytes, without.total_bytes);
}

TEST(ClienteleTreeTest, EmptyTraceYieldsEmptyTree) {
  const Fixture f;
  trace::Trace empty;
  empty.num_clients = f.trace.num_clients;
  const ClienteleTree tree = BuildClienteleTree(*f.topology, empty, 0);
  EXPECT_TRUE(tree.leaves.empty());
  EXPECT_EQ(tree.total_bytes, 0u);
  EXPECT_EQ(tree.total_bytes_hops, 0u);
}

}  // namespace
}  // namespace sds::net

#include "net/faults.h"

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <utility>
#include <vector>

#include "net/route_table.h"
#include "net/topology.h"
#include "trace/request.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sds::net {
namespace {

Topology MakeTopology(uint32_t num_clients = 60, uint32_t num_servers = 2,
                      uint64_t seed = 1) {
  TopologyConfig config;
  config.regions = 4;
  config.orgs_per_region = 3;
  config.subnets_per_org = 2;
  std::vector<bool> remote(num_clients);
  for (uint32_t c = 0; c < num_clients; ++c) remote[c] = c % 3 != 0;
  Rng rng(seed);
  return Topology::Generate(config, num_clients, remote, num_servers, &rng);
}

TEST(FaultScheduleTest, IntervalsAreHalfOpen) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kNodeOutage, 7, 10.0, 20.0});
  EXPECT_FALSE(schedule.NodeDown(7, 9.999));
  EXPECT_TRUE(schedule.NodeDown(7, 10.0));
  EXPECT_TRUE(schedule.NodeDown(7, 19.999));
  EXPECT_FALSE(schedule.NodeDown(7, 20.0));
  // Other nodes and other fault kinds are unaffected.
  EXPECT_FALSE(schedule.NodeDown(8, 15.0));
  EXPECT_FALSE(schedule.LinkDown(7, 15.0));
  EXPECT_FALSE(schedule.ServerDown(7, 15.0));
}

TEST(FaultScheduleTest, KindsAreKeyedIndependently) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kLinkOutage, 3, 0.0, 5.0});
  schedule.Add({FaultKind::kServerOutage, 0, 0.0, 5.0});
  schedule.Add({FaultKind::kServerBrownout, 1, 0.0, 5.0});
  EXPECT_TRUE(schedule.LinkDown(3, 1.0));
  EXPECT_FALSE(schedule.NodeDown(3, 1.0));
  EXPECT_TRUE(schedule.ServerDown(0, 1.0));
  EXPECT_FALSE(schedule.ServerDegraded(0, 1.0));
  EXPECT_TRUE(schedule.ServerDegraded(1, 1.0));
  EXPECT_FALSE(schedule.ServerDown(1, 1.0));
  EXPECT_EQ(schedule.size(), 3u);
}

TEST(FaultScheduleTest, PathUpChecksRouteNodesAndEdges) {
  const Topology topo = MakeTopology();
  const NodeId server = topo.server_node(0);
  // Pick a remote client whose route to the server crosses several nodes.
  NodeId client = kInvalidNode;
  for (uint32_t c = 0; c < topo.num_clients(); ++c) {
    if (topo.Route(topo.client_node(c), server).size() >= 4) {
      client = topo.client_node(c);
      break;
    }
  }
  ASSERT_NE(client, kInvalidNode);
  const std::vector<NodeId> route = topo.Route(client, server);

  FaultSchedule empty;
  EXPECT_TRUE(empty.PathUp(topo, client, server, 0.0));

  // A node mid-route breaks the path while it is down.
  FaultSchedule node_fault;
  node_fault.Add({FaultKind::kNodeOutage, route[1], 0.0, 10.0});
  EXPECT_FALSE(node_fault.PathUp(topo, client, server, 5.0));
  EXPECT_TRUE(node_fault.PathUp(topo, client, server, 10.0));

  // The querying client's own attachment node is exempt.
  FaultSchedule own_node;
  own_node.Add({FaultKind::kNodeOutage, client, 0.0, 10.0});
  EXPECT_TRUE(own_node.PathUp(topo, client, server, 5.0));

  // Cutting the first edge (keyed by its deeper endpoint, the client's
  // subnet) breaks the path even though every node is up.
  FaultSchedule link_fault;
  link_fault.Add({FaultKind::kLinkOutage, client, 0.0, 10.0});
  EXPECT_FALSE(link_fault.PathUp(topo, client, server, 5.0));

  // A link elsewhere in the tree does not.
  NodeId off_route = kInvalidNode;
  for (NodeId n = 1; n < topo.num_nodes(); ++n) {
    if (!topo.OnRoute(n, client, server)) {
      off_route = n;
      break;
    }
  }
  ASSERT_NE(off_route, kInvalidNode);
  FaultSchedule other_link;
  other_link.Add({FaultKind::kLinkOutage, off_route, 0.0, 10.0});
  EXPECT_TRUE(other_link.PathUp(topo, client, server, 5.0));
}

TEST(GenerateFaultScheduleTest, ZeroRatesProduceEmptySchedule) {
  const Topology topo = MakeTopology();
  FaultInjectionConfig config;
  config.horizon_days = 30.0;
  Rng rng(42);
  const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);
  EXPECT_TRUE(schedule.empty());
}

TEST(GenerateFaultScheduleTest, DeterministicForEqualSeeds) {
  const Topology topo = MakeTopology();
  FaultInjectionConfig config;
  config.horizon_days = 60.0;
  config.node_failure_rate_per_day = 0.05;
  config.link_failure_rate_per_day = 0.02;
  config.server_failure_rate_per_day = 0.1;
  Rng rng_a(7);
  Rng rng_b(7);
  const FaultSchedule a = GenerateFaultSchedule(topo, config, &rng_a);
  const FaultSchedule b = GenerateFaultSchedule(topo, config, &rng_b);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].end, b.events()[i].end);
  }
  Rng rng_c(8);
  const FaultSchedule c = GenerateFaultSchedule(topo, config, &rng_c);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c.events()[i].id != a.events()[i].id ||
              c.events()[i].start != a.events()[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateFaultScheduleTest, RespectsEntityDomainsAndDurations) {
  const Topology topo = MakeTopology(60, 2);
  FaultInjectionConfig config;
  config.horizon_days = 90.0;
  config.node_failure_rate_per_day = 0.05;
  config.link_failure_rate_per_day = 0.05;
  config.server_failure_rate_per_day = 0.05;
  Rng rng(11);
  const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);
  ASSERT_FALSE(schedule.empty());
  const SimTime horizon = config.horizon_days * kDay;
  for (const FaultEvent& e : schedule.events()) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_LT(e.start, horizon);
    EXPECT_GE(e.end - e.start, config.min_outage_days * kDay);
    switch (e.kind) {
      case FaultKind::kNodeOutage:
      case FaultKind::kLinkOutage:
        // The backbone root never fails and no id is out of range.
        EXPECT_GE(e.id, 1u);
        EXPECT_LT(e.id, topo.num_nodes());
        break;
      case FaultKind::kServerOutage:
        EXPECT_LT(e.id, topo.num_servers());
        break;
      case FaultKind::kServerBrownout:
        ADD_FAILURE() << "random generation must not emit brownouts";
        break;
    }
  }
}

TEST(AddLoadBrownoutsTest, TripsOnlyOverloadedDays) {
  trace::Trace trace;
  trace.num_clients = 1;
  trace.num_servers = 2;
  // Day 0: one tiny request on server 0 (under any sane threshold).
  // Day 1: heavy traffic on server 0. Day 1 on server 1: idle.
  trace::Request light;
  light.time = 1000.0;
  light.kind = trace::RequestKind::kDocument;
  light.server = 0;
  light.bytes = 1000;
  trace.requests.push_back(light);
  for (int i = 0; i < 200; ++i) {
    trace::Request heavy;
    heavy.time = kDay + 100.0 * i;
    heavy.kind = trace::RequestKind::kDocument;
    heavy.server = 0;
    heavy.bytes = 50'000'000;
    trace.requests.push_back(heavy);
  }
  // kScript/kNotFound records never count toward server load here.
  trace::Request script;
  script.time = 2 * kDay + 5.0;
  script.kind = trace::RequestKind::kScript;
  script.server = 0;
  script.bytes = 1'000'000'000;
  trace.requests.push_back(script);

  BrownoutConfig config;
  config.utilization_threshold = 0.05;
  // 200 x 50 MB / 1.5 MB/s ~ 6667 s busy ~ 0.077 utilization > 0.05.
  FaultSchedule schedule;
  const uint32_t tripped = AddLoadBrownouts(trace, 0, config, &schedule);
  EXPECT_EQ(tripped, 1u);
  EXPECT_FALSE(schedule.ServerDegraded(0, 1000.0));
  EXPECT_TRUE(schedule.ServerDegraded(0, kDay + 1.0));
  EXPECT_TRUE(schedule.ServerDegraded(0, 2 * kDay - 1.0));
  EXPECT_FALSE(schedule.ServerDegraded(0, 2 * kDay + 10.0));
  // Brownout does not mean down, and other servers are unaffected.
  EXPECT_FALSE(schedule.ServerDown(0, kDay + 1.0));
  FaultSchedule other;
  EXPECT_EQ(AddLoadBrownouts(trace, 1, config, &other), 0u);
  EXPECT_TRUE(other.empty());
}

TEST(FaultScheduleTest, CoversMatchesBruteForceOnMessyIntervals) {
  // Overlapping, nested, duplicated, adjacent and exactly-touching
  // intervals: the merged binary-search answer must equal a linear scan of
  // the raw event list at every probe, in particular on the boundaries.
  FaultSchedule schedule;
  const std::pair<SimTime, SimTime> raw[] = {
      {10.0, 20.0}, {15.0, 25.0},  // overlap
      {25.0, 30.0},                // touches [10, 25) exactly at 25
      {40.0, 50.0}, {50.0, 60.0},  // adjacent halves
      {40.0, 50.0},                // duplicate
      {41.0, 43.0},                // nested
      {5.0, 12.0},                 // overlaps the merged front
      {70.0, 70.0},                // empty interval covers nothing
  };
  for (const auto& [start, end] : raw) {
    schedule.Add({FaultKind::kNodeOutage, 3, start, end});
  }
  // The event log keeps every Add verbatim.
  ASSERT_EQ(schedule.size(), std::size(raw));

  std::vector<SimTime> probes;
  for (double t = 0.0; t <= 75.0; t += 0.5) probes.push_back(t);
  for (const FaultEvent& e : schedule.events()) {
    probes.push_back(e.start);
    probes.push_back(e.end);
    probes.push_back(e.start - 1e-9);
    probes.push_back(e.end - 1e-9);
  }
  for (const SimTime t : probes) {
    bool brute = false;
    for (const FaultEvent& e : schedule.events()) {
      brute = brute || (e.start <= t && t < e.end);
    }
    EXPECT_EQ(schedule.NodeDown(3, t), brute) << "t=" << t;
  }
}

TEST(GenerateFaultScheduleTest, ZoneFailureTakesDownWholeSubtree) {
  const Topology topo = MakeTopology();
  FaultInjectionConfig config;
  config.horizon_days = 20.0;
  config.node_failure_rate_per_day = 0.05;
  config.zone_failure_probability = 1.0;
  Rng rng(13);
  const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);
  ASSERT_FALSE(schedule.empty());
  // Every drawn node outage is a zone failure: all strict descendants of
  // the node share the exact interval. Replicated descendant events are
  // themselves node outages whose own subtrees were replicated too, so the
  // check holds for every event in the log.
  bool saw_interior = false;
  for (const FaultEvent& e : schedule.events()) {
    ASSERT_EQ(e.kind, FaultKind::kNodeOutage);
    const SimTime mid = 0.5 * (e.start + e.end);
    for (NodeId other = 1; other < topo.num_nodes(); ++other) {
      bool descendant = false;
      for (NodeId up = topo.parent(other); ; up = topo.parent(up)) {
        if (up == e.id) {
          descendant = true;
          break;
        }
        if (up == topo.root()) break;
      }
      if (descendant) {
        saw_interior = true;
        EXPECT_TRUE(schedule.NodeDown(other, mid))
            << "descendant " << other << " of " << e.id << " not down";
      }
    }
  }
  EXPECT_TRUE(saw_interior);  // at least one non-leaf outage fired

  // Same seed, same config: the zone draws are part of the deterministic
  // stream.
  Rng rng_b(13);
  const FaultSchedule b = GenerateFaultSchedule(topo, config, &rng_b);
  ASSERT_EQ(b.size(), schedule.size());
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.events()[i].id, schedule.events()[i].id);
    EXPECT_EQ(b.events()[i].start, schedule.events()[i].start);
  }
}

TEST(FaultScheduleTest, PathUpEqualsRouteConjunctionOnRandomSchedules) {
  // Property (random topologies and schedules): PathUp(from, to, t) is
  // exactly the conjunction of !NodeDown / !LinkDown over the explicit
  // route, with nodes checked excluding `from` and each edge keyed by its
  // deeper endpoint — evaluated here over RouteTable's precomputed routes.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology topo = MakeTopology(40 + 7 * seed, 2, seed);
    const NodeId server = topo.server_node(0);
    const RouteTable routes(topo, server);

    FaultInjectionConfig config;
    config.horizon_days = 15.0;
    config.node_failure_rate_per_day = 0.10;
    config.link_failure_rate_per_day = 0.08;
    config.zone_failure_probability = seed % 2 == 0 ? 0.5 : 0.0;
    Rng rng(seed * 1000 + 17);
    const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);

    Rng probe_rng(seed);
    for (int probe = 0; probe < 200; ++probe) {
      const NodeId from = 1 + static_cast<NodeId>(probe_rng.NextDouble() *
                                                  (topo.num_nodes() - 1));
      const SimTime t = probe_rng.NextDouble() * config.horizon_days * kDay;
      // RouteTable stores server -> from; PathUp walks from -> server.
      // The conjunction is direction-independent.
      const std::vector<NodeId>& route = routes.route(from);
      bool expected = true;
      for (size_t i = 0; i + 1 < route.size(); ++i) {
        const NodeId a = route[i];
        const NodeId b = route[i + 1];
        if (a != from && schedule.NodeDown(a, t)) expected = false;
        if (b != from && schedule.NodeDown(b, t)) expected = false;
        const NodeId child = topo.depth(b) > topo.depth(a) ? b : a;
        if (schedule.LinkDown(child, t)) expected = false;
      }
      EXPECT_EQ(schedule.PathUp(topo, from, server, t), expected)
          << "seed=" << seed << " from=" << from << " t=" << t;
    }
  }
}

TEST(RetryPolicyTest, ValidateAcceptsDefaultsAndCatchesEachField) {
  EXPECT_TRUE(RetryPolicy{}.Validate().ok());

  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);

  p = RetryPolicy{};
  p.jitter = 1.5;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p.jitter = -0.1;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p.jitter = 1.0;
  EXPECT_TRUE(p.Validate().ok());

  p = RetryPolicy{};
  p.timeout_s = -1.0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);

  p = RetryPolicy{};
  p.base_backoff_s = -1.0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);

  p = RetryPolicy{};
  p.max_backoff_s = -1.0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);

  p = RetryPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);

  // NaN never validates.
  p = RetryPolicy{};
  p.jitter = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(LoadTrackerTest, TripsAtThresholdAndCountsBrownouts) {
  LoadTrackerConfig config;
  config.service_overhead_s = 10.0;
  config.service_rate_bytes_per_s = 1e12;  // bytes negligible
  config.window_s = 100.0;
  config.utilization_threshold = 0.5;
  config.admission_threshold = 0.3;
  config.brownout_duration_s = 50.0;
  LoadTracker tracker(2, config);

  // Four requests: 40 busy seconds, utilization 0.4 — under pressure but
  // not overloaded.
  for (int i = 0; i < 4; ++i) tracker.RecordService(0, 10.0 + i, 0.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(0, 20.0), 0.4);
  EXPECT_FALSE(tracker.Overloaded(0, 20.0));
  EXPECT_TRUE(tracker.UnderPressure(0, 20.0));
  EXPECT_EQ(tracker.emergent_brownouts(), 0u);

  // Two more pushes past the 0.5 threshold: exactly one transition.
  tracker.RecordOverhead(0, 20.0);
  tracker.RecordOverhead(0, 21.0);
  EXPECT_TRUE(tracker.Overloaded(0, 22.0));
  EXPECT_EQ(tracker.emergent_brownouts(), 1u);
  // More load while browned out does not re-count the transition.
  tracker.RecordOverhead(0, 25.0);
  EXPECT_EQ(tracker.emergent_brownouts(), 1u);

  // The brownout expires after its duration (21 + 50).
  EXPECT_TRUE(tracker.Overloaded(0, 70.0));
  EXPECT_FALSE(tracker.Overloaded(0, 71.5));

  // The other entity is independent, and a fresh window starts clean.
  EXPECT_FALSE(tracker.UnderPressure(1, 20.0));
  EXPECT_DOUBLE_EQ(tracker.Utilization(0, 500.0), 0.0);
  tracker.RecordService(0, 500.0, 0.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(0, 500.0), 0.1);
  EXPECT_FALSE(tracker.UnderPressure(0, 500.0));
}

TEST(LoadTrackerTest, BytesCountTowardUtilization) {
  LoadTrackerConfig config;
  config.service_overhead_s = 0.0;
  config.service_rate_bytes_per_s = 100.0;
  config.window_s = 100.0;
  LoadTracker tracker(1, config);
  tracker.RecordService(0, 0.0, 2000.0);  // 20 busy seconds
  EXPECT_DOUBLE_EQ(tracker.Utilization(0, 1.0), 0.2);
}

TEST(LoadTrackerTest, OutOfOrderChargesNeverRollBackwards) {
  LoadTrackerConfig config;
  config.service_overhead_s = 1.0;
  config.window_s = 100.0;
  LoadTracker tracker(1, config);
  tracker.RecordOverhead(0, 250.0);  // window [200, 300)
  tracker.RecordOverhead(0, 150.0);  // late charge lands in the window
  EXPECT_DOUBLE_EQ(tracker.Utilization(0, 250.0), 0.02);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndProbes) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_s = 30.0;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  breaker.RecordFailure(1.0);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success resets the consecutive count.
  breaker.RecordSuccess();
  breaker.RecordFailure(3.0);
  breaker.RecordFailure(4.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(5.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 1u);

  // Open: fail fast until the cooldown elapses.
  EXPECT_FALSE(breaker.AllowRequest(10.0));
  EXPECT_FALSE(breaker.AllowRequest(34.999));
  // Cooldown over: one half-open probe is admitted.
  EXPECT_TRUE(breaker.AllowRequest(35.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // Probe fails: straight back to open, counted as a transition.
  breaker.RecordFailure(35.5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 2u);
  EXPECT_FALSE(breaker.AllowRequest(36.0));

  // Next probe succeeds: closed again, and it takes the full threshold of
  // fresh failures to re-open.
  EXPECT_TRUE(breaker.AllowRequest(35.5 + 30.0));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(70.0);
  breaker.RecordFailure(71.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(72.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 3u);
}

TEST(RetryBudgetTest, CapsRetryRatioWithFloor) {
  RetryBudgetConfig config;
  config.window_s = 100.0;
  config.max_retry_ratio = 0.5;
  config.min_retries_per_window = 2;
  RetryBudget budget(config);

  // No requests yet: the floor still admits two retries.
  EXPECT_TRUE(budget.TryRetry(0.0));
  EXPECT_TRUE(budget.TryRetry(1.0));
  EXPECT_FALSE(budget.TryRetry(2.0));
  EXPECT_EQ(budget.suppressed(), 1u);

  // Requests earn budget: 8 requests -> 4 retries allowed; 2 are already
  // spent this window.
  for (int i = 0; i < 8; ++i) budget.RecordRequest(10.0 + i);
  EXPECT_TRUE(budget.TryRetry(20.0));
  EXPECT_TRUE(budget.TryRetry(21.0));
  EXPECT_FALSE(budget.TryRetry(22.0));
  EXPECT_EQ(budget.suppressed(), 2u);

  // A new window resets both counters.
  EXPECT_TRUE(budget.TryRetry(150.0));
  EXPECT_TRUE(budget.TryRetry(151.0));
  EXPECT_FALSE(budget.TryRetry(152.0));
  EXPECT_EQ(budget.suppressed(), 3u);
}

}  // namespace
}  // namespace sds::net

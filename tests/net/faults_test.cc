#include "net/faults.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "trace/request.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sds::net {
namespace {

Topology MakeTopology(uint32_t num_clients = 60, uint32_t num_servers = 2,
                      uint64_t seed = 1) {
  TopologyConfig config;
  config.regions = 4;
  config.orgs_per_region = 3;
  config.subnets_per_org = 2;
  std::vector<bool> remote(num_clients);
  for (uint32_t c = 0; c < num_clients; ++c) remote[c] = c % 3 != 0;
  Rng rng(seed);
  return Topology::Generate(config, num_clients, remote, num_servers, &rng);
}

TEST(FaultScheduleTest, IntervalsAreHalfOpen) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kNodeOutage, 7, 10.0, 20.0});
  EXPECT_FALSE(schedule.NodeDown(7, 9.999));
  EXPECT_TRUE(schedule.NodeDown(7, 10.0));
  EXPECT_TRUE(schedule.NodeDown(7, 19.999));
  EXPECT_FALSE(schedule.NodeDown(7, 20.0));
  // Other nodes and other fault kinds are unaffected.
  EXPECT_FALSE(schedule.NodeDown(8, 15.0));
  EXPECT_FALSE(schedule.LinkDown(7, 15.0));
  EXPECT_FALSE(schedule.ServerDown(7, 15.0));
}

TEST(FaultScheduleTest, KindsAreKeyedIndependently) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kLinkOutage, 3, 0.0, 5.0});
  schedule.Add({FaultKind::kServerOutage, 0, 0.0, 5.0});
  schedule.Add({FaultKind::kServerBrownout, 1, 0.0, 5.0});
  EXPECT_TRUE(schedule.LinkDown(3, 1.0));
  EXPECT_FALSE(schedule.NodeDown(3, 1.0));
  EXPECT_TRUE(schedule.ServerDown(0, 1.0));
  EXPECT_FALSE(schedule.ServerDegraded(0, 1.0));
  EXPECT_TRUE(schedule.ServerDegraded(1, 1.0));
  EXPECT_FALSE(schedule.ServerDown(1, 1.0));
  EXPECT_EQ(schedule.size(), 3u);
}

TEST(FaultScheduleTest, PathUpChecksRouteNodesAndEdges) {
  const Topology topo = MakeTopology();
  const NodeId server = topo.server_node(0);
  // Pick a remote client whose route to the server crosses several nodes.
  NodeId client = kInvalidNode;
  for (uint32_t c = 0; c < topo.num_clients(); ++c) {
    if (topo.Route(topo.client_node(c), server).size() >= 4) {
      client = topo.client_node(c);
      break;
    }
  }
  ASSERT_NE(client, kInvalidNode);
  const std::vector<NodeId> route = topo.Route(client, server);

  FaultSchedule empty;
  EXPECT_TRUE(empty.PathUp(topo, client, server, 0.0));

  // A node mid-route breaks the path while it is down.
  FaultSchedule node_fault;
  node_fault.Add({FaultKind::kNodeOutage, route[1], 0.0, 10.0});
  EXPECT_FALSE(node_fault.PathUp(topo, client, server, 5.0));
  EXPECT_TRUE(node_fault.PathUp(topo, client, server, 10.0));

  // The querying client's own attachment node is exempt.
  FaultSchedule own_node;
  own_node.Add({FaultKind::kNodeOutage, client, 0.0, 10.0});
  EXPECT_TRUE(own_node.PathUp(topo, client, server, 5.0));

  // Cutting the first edge (keyed by its deeper endpoint, the client's
  // subnet) breaks the path even though every node is up.
  FaultSchedule link_fault;
  link_fault.Add({FaultKind::kLinkOutage, client, 0.0, 10.0});
  EXPECT_FALSE(link_fault.PathUp(topo, client, server, 5.0));

  // A link elsewhere in the tree does not.
  NodeId off_route = kInvalidNode;
  for (NodeId n = 1; n < topo.num_nodes(); ++n) {
    if (!topo.OnRoute(n, client, server)) {
      off_route = n;
      break;
    }
  }
  ASSERT_NE(off_route, kInvalidNode);
  FaultSchedule other_link;
  other_link.Add({FaultKind::kLinkOutage, off_route, 0.0, 10.0});
  EXPECT_TRUE(other_link.PathUp(topo, client, server, 5.0));
}

TEST(GenerateFaultScheduleTest, ZeroRatesProduceEmptySchedule) {
  const Topology topo = MakeTopology();
  FaultInjectionConfig config;
  config.horizon_days = 30.0;
  Rng rng(42);
  const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);
  EXPECT_TRUE(schedule.empty());
}

TEST(GenerateFaultScheduleTest, DeterministicForEqualSeeds) {
  const Topology topo = MakeTopology();
  FaultInjectionConfig config;
  config.horizon_days = 60.0;
  config.node_failure_rate_per_day = 0.05;
  config.link_failure_rate_per_day = 0.02;
  config.server_failure_rate_per_day = 0.1;
  Rng rng_a(7);
  Rng rng_b(7);
  const FaultSchedule a = GenerateFaultSchedule(topo, config, &rng_a);
  const FaultSchedule b = GenerateFaultSchedule(topo, config, &rng_b);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].end, b.events()[i].end);
  }
  Rng rng_c(8);
  const FaultSchedule c = GenerateFaultSchedule(topo, config, &rng_c);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c.events()[i].id != a.events()[i].id ||
              c.events()[i].start != a.events()[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateFaultScheduleTest, RespectsEntityDomainsAndDurations) {
  const Topology topo = MakeTopology(60, 2);
  FaultInjectionConfig config;
  config.horizon_days = 90.0;
  config.node_failure_rate_per_day = 0.05;
  config.link_failure_rate_per_day = 0.05;
  config.server_failure_rate_per_day = 0.05;
  Rng rng(11);
  const FaultSchedule schedule = GenerateFaultSchedule(topo, config, &rng);
  ASSERT_FALSE(schedule.empty());
  const SimTime horizon = config.horizon_days * kDay;
  for (const FaultEvent& e : schedule.events()) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_LT(e.start, horizon);
    EXPECT_GE(e.end - e.start, config.min_outage_days * kDay);
    switch (e.kind) {
      case FaultKind::kNodeOutage:
      case FaultKind::kLinkOutage:
        // The backbone root never fails and no id is out of range.
        EXPECT_GE(e.id, 1u);
        EXPECT_LT(e.id, topo.num_nodes());
        break;
      case FaultKind::kServerOutage:
        EXPECT_LT(e.id, topo.num_servers());
        break;
      case FaultKind::kServerBrownout:
        ADD_FAILURE() << "random generation must not emit brownouts";
        break;
    }
  }
}

TEST(AddLoadBrownoutsTest, TripsOnlyOverloadedDays) {
  trace::Trace trace;
  trace.num_clients = 1;
  trace.num_servers = 2;
  // Day 0: one tiny request on server 0 (under any sane threshold).
  // Day 1: heavy traffic on server 0. Day 1 on server 1: idle.
  trace::Request light;
  light.time = 1000.0;
  light.kind = trace::RequestKind::kDocument;
  light.server = 0;
  light.bytes = 1000;
  trace.requests.push_back(light);
  for (int i = 0; i < 200; ++i) {
    trace::Request heavy;
    heavy.time = kDay + 100.0 * i;
    heavy.kind = trace::RequestKind::kDocument;
    heavy.server = 0;
    heavy.bytes = 50'000'000;
    trace.requests.push_back(heavy);
  }
  // kScript/kNotFound records never count toward server load here.
  trace::Request script;
  script.time = 2 * kDay + 5.0;
  script.kind = trace::RequestKind::kScript;
  script.server = 0;
  script.bytes = 1'000'000'000;
  trace.requests.push_back(script);

  BrownoutConfig config;
  config.utilization_threshold = 0.05;
  // 200 x 50 MB / 1.5 MB/s ~ 6667 s busy ~ 0.077 utilization > 0.05.
  FaultSchedule schedule;
  const uint32_t tripped = AddLoadBrownouts(trace, 0, config, &schedule);
  EXPECT_EQ(tripped, 1u);
  EXPECT_FALSE(schedule.ServerDegraded(0, 1000.0));
  EXPECT_TRUE(schedule.ServerDegraded(0, kDay + 1.0));
  EXPECT_TRUE(schedule.ServerDegraded(0, 2 * kDay - 1.0));
  EXPECT_FALSE(schedule.ServerDegraded(0, 2 * kDay + 10.0));
  // Brownout does not mean down, and other servers are unaffected.
  EXPECT_FALSE(schedule.ServerDown(0, kDay + 1.0));
  FaultSchedule other;
  EXPECT_EQ(AddLoadBrownouts(trace, 1, config, &other), 0u);
  EXPECT_TRUE(other.empty());
}

}  // namespace
}  // namespace sds::net

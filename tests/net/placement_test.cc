#include "net/placement.h"

#include <set>
#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::net {
namespace {

/// Builds a small topology + clientele tree with skewed traffic so that
/// placement quality differences are visible.
struct Fixture {
  explicit Fixture(uint64_t seed = 1) {
    TopologyConfig config;
    config.regions = 3;
    config.orgs_per_region = 2;
    config.subnets_per_org = 2;
    config.client_skew_s = 1.2;
    const uint32_t n = 80;
    std::vector<bool> remote(n, true);
    Rng rng(seed);
    topology = std::make_unique<Topology>(
        Topology::Generate(config, n, remote, 1, &rng));
    trace.num_clients = n;
    Rng traffic_rng(seed + 1);
    for (uint32_t c = 0; c < n; ++c) {
      const uint32_t reqs = 1 + static_cast<uint32_t>(
                                    traffic_rng.NextBounded(5));
      for (uint32_t k = 0; k < reqs; ++k) {
        trace::Request r;
        r.time = c * 10.0 + k;
        r.client = c;
        r.doc = 0;
        r.server = 0;
        r.bytes = 500 + static_cast<uint32_t>(traffic_rng.NextBounded(2000));
        r.remote_client = true;
        trace.requests.push_back(r);
      }
    }
    tree = BuildClienteleTree(*topology, trace, 0);
  }

  std::unique_ptr<Topology> topology;
  trace::Trace trace;
  ClienteleTree tree;
};

TEST(PlacementTest, EvaluateEmptySetSavesNothing) {
  const Fixture f;
  EXPECT_DOUBLE_EQ(EvaluatePlacement(f.tree, {}, 1.0), 0.0);
}

TEST(PlacementTest, HitRatioScalesLinearly) {
  const Fixture f;
  const auto greedy = GreedyPlacement(f.tree, 3, 1.0);
  const double full = EvaluatePlacement(f.tree, greedy.proxies, 1.0);
  const double half = EvaluatePlacement(f.tree, greedy.proxies, 0.5);
  EXPECT_NEAR(half, full / 2.0, 1e-6);
}

TEST(PlacementTest, GreedySavingsMonotoneInK) {
  const Fixture f;
  double prev = 0.0;
  for (uint32_t k = 1; k <= 8; ++k) {
    const auto result = GreedyPlacement(f.tree, k, 1.0);
    EXPECT_GE(result.saved_bytes_hops, prev - 1e-9);
    prev = result.saved_bytes_hops;
  }
}

TEST(PlacementTest, SavedFractionBounded) {
  const Fixture f;
  for (uint32_t k = 1; k <= 10; ++k) {
    const auto result = GreedyPlacement(f.tree, k, 1.0);
    EXPECT_GE(result.saved_fraction, 0.0);
    EXPECT_LE(result.saved_fraction, 1.0 + 1e-12);
  }
}

/// Greedy must match the exhaustive optimum on small instances (the
/// objective is submodular; on trees greedy is near-optimal, and for these
/// sizes we verify it exactly or within the (1 - 1/e) bound).
class GreedyVsExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(GreedyVsExhaustiveTest, GreedyNearOptimal) {
  const auto [seed, k] = GetParam();
  const Fixture f(seed);
  if (f.tree.interior_nodes.size() > 24) GTEST_SKIP();
  const auto greedy = GreedyPlacement(f.tree, k, 1.0);
  const auto exact = ExhaustivePlacement(f.tree, k, 1.0);
  EXPECT_GE(greedy.saved_bytes_hops, 0.63 * exact.saved_bytes_hops);
  // Empirically greedy lands within a few percent of optimal on these
  // tree instances (it can be strictly suboptimal: submodular, not matroid
  // -exact).
  EXPECT_NEAR(greedy.saved_bytes_hops, exact.saved_bytes_hops,
              0.10 * exact.saved_bytes_hops + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyVsExhaustiveTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(1u, 2u, 3u)));

TEST(PlacementTest, GreedyBeatsRandomAndRegionalRarelyLoses) {
  const Fixture f;
  Rng rng(99);
  const auto greedy = GreedyPlacement(f.tree, 3, 1.0);
  const auto regional = RegionalPlacement(*f.topology, f.tree, 3, 1.0);
  double random_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    random_sum += RandomPlacement(f.tree, 3, 1.0, &rng).saved_bytes_hops;
  }
  EXPECT_GE(greedy.saved_bytes_hops, regional.saved_bytes_hops - 1e-9);
  EXPECT_GT(greedy.saved_bytes_hops, random_sum / 20.0);
}

TEST(PlacementTest, MoreProxiesThanNodesIsFine) {
  const Fixture f;
  const auto result = GreedyPlacement(
      f.tree, static_cast<uint32_t>(f.tree.interior_nodes.size()) + 10, 1.0);
  EXPECT_LE(result.proxies.size(), f.tree.interior_nodes.size());
}

TEST(PlacementTest, DepthRestrictedPlacementHonorsDepths) {
  const Fixture f;
  for (const uint32_t depth : {1u, 2u, 3u}) {
    const auto result =
        GreedyPlacementAtDepths(*f.topology, f.tree, 4, 1.0, {depth});
    for (const NodeId node : result.proxies) {
      EXPECT_EQ(f.topology->depth(node), depth);
    }
  }
}

TEST(PlacementTest, UnrestrictedDominatesAnySingleDepth) {
  // The *optimum* over all depths dominates any single-depth optimum;
  // greedy is a heuristic, so allow it a small slack against the
  // restricted variants.
  const Fixture f;
  const double unrestricted = GreedyPlacement(f.tree, 4, 1.0).saved_bytes_hops;
  for (const uint32_t depth : {1u, 2u, 3u}) {
    const double restricted =
        GreedyPlacementAtDepths(*f.topology, f.tree, 4, 1.0, {depth})
            .saved_bytes_hops;
    EXPECT_GE(unrestricted, 0.97 * restricted) << "depth " << depth;
  }
}

TEST(PlacementTest, AllDepthsEqualsUnrestricted) {
  const Fixture f;
  const auto a = GreedyPlacement(f.tree, 3, 1.0);
  const auto b = GreedyPlacementAtDepths(*f.topology, f.tree, 3, 1.0,
                                         {1, 2, 3});
  EXPECT_DOUBLE_EQ(a.saved_bytes_hops, b.saved_bytes_hops);
}

TEST(PlacementTest, RandomPlacementDistinctNodes) {
  const Fixture f;
  Rng rng(5);
  const auto result = RandomPlacement(f.tree, 5, 1.0, &rng);
  std::set<NodeId> unique(result.proxies.begin(), result.proxies.end());
  EXPECT_EQ(unique.size(), result.proxies.size());
}

}  // namespace
}  // namespace sds::net

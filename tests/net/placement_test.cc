#include "net/placement.h"

#include <algorithm>
#include <map>
#include <set>
#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::net {
namespace {

/// Builds a small topology + clientele tree with skewed traffic so that
/// placement quality differences are visible.
struct Fixture {
  explicit Fixture(uint64_t seed = 1) {
    TopologyConfig config;
    config.regions = 3;
    config.orgs_per_region = 2;
    config.subnets_per_org = 2;
    config.client_skew_s = 1.2;
    const uint32_t n = 80;
    std::vector<bool> remote(n, true);
    Rng rng(seed);
    topology = std::make_unique<Topology>(
        Topology::Generate(config, n, remote, 1, &rng));
    trace.num_clients = n;
    Rng traffic_rng(seed + 1);
    for (uint32_t c = 0; c < n; ++c) {
      const uint32_t reqs = 1 + static_cast<uint32_t>(
                                    traffic_rng.NextBounded(5));
      for (uint32_t k = 0; k < reqs; ++k) {
        trace::Request r;
        r.time = c * 10.0 + k;
        r.client = c;
        r.doc = 0;
        r.server = 0;
        r.bytes = 500 + static_cast<uint32_t>(traffic_rng.NextBounded(2000));
        r.remote_client = true;
        trace.requests.push_back(r);
      }
    }
    tree = BuildClienteleTree(*topology, trace, 0);
  }

  std::unique_ptr<Topology> topology;
  trace::Trace trace;
  ClienteleTree tree;
};

TEST(PlacementTest, EvaluateEmptySetSavesNothing) {
  const Fixture f;
  EXPECT_DOUBLE_EQ(EvaluatePlacement(f.tree, {}, 1.0), 0.0);
}

TEST(PlacementTest, HitRatioScalesLinearly) {
  const Fixture f;
  const auto greedy = GreedyPlacement(f.tree, 3, 1.0);
  const double full = EvaluatePlacement(f.tree, greedy.proxies, 1.0);
  const double half = EvaluatePlacement(f.tree, greedy.proxies, 0.5);
  EXPECT_NEAR(half, full / 2.0, 1e-6);
}

TEST(PlacementTest, GreedySavingsMonotoneInK) {
  const Fixture f;
  double prev = 0.0;
  for (uint32_t k = 1; k <= 8; ++k) {
    const auto result = GreedyPlacement(f.tree, k, 1.0);
    EXPECT_GE(result.saved_bytes_hops, prev - 1e-9);
    prev = result.saved_bytes_hops;
  }
}

TEST(PlacementTest, SavedFractionBounded) {
  const Fixture f;
  for (uint32_t k = 1; k <= 10; ++k) {
    const auto result = GreedyPlacement(f.tree, k, 1.0);
    EXPECT_GE(result.saved_fraction, 0.0);
    EXPECT_LE(result.saved_fraction, 1.0 + 1e-12);
  }
}

/// Greedy must match the exhaustive optimum on small instances (the
/// objective is submodular; on trees greedy is near-optimal, and for these
/// sizes we verify it exactly or within the (1 - 1/e) bound).
class GreedyVsExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(GreedyVsExhaustiveTest, GreedyNearOptimal) {
  const auto [seed, k] = GetParam();
  const Fixture f(seed);
  if (f.tree.interior_nodes.size() > 24) GTEST_SKIP();
  const auto greedy = GreedyPlacement(f.tree, k, 1.0);
  const auto exact = ExhaustivePlacement(f.tree, k, 1.0);
  EXPECT_GE(greedy.saved_bytes_hops, 0.63 * exact.saved_bytes_hops);
  // Empirically greedy lands within a few percent of optimal on these
  // tree instances (it can be strictly suboptimal: submodular, not matroid
  // -exact).
  EXPECT_NEAR(greedy.saved_bytes_hops, exact.saved_bytes_hops,
              0.10 * exact.saved_bytes_hops + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyVsExhaustiveTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(1u, 2u, 3u)));

TEST(PlacementTest, GreedyBeatsRandomAndRegionalRarelyLoses) {
  const Fixture f;
  Rng rng(99);
  const auto greedy = GreedyPlacement(f.tree, 3, 1.0);
  const auto regional = RegionalPlacement(*f.topology, f.tree, 3, 1.0);
  double random_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    random_sum += RandomPlacement(f.tree, 3, 1.0, &rng).saved_bytes_hops;
  }
  EXPECT_GE(greedy.saved_bytes_hops, regional.saved_bytes_hops - 1e-9);
  EXPECT_GT(greedy.saved_bytes_hops, random_sum / 20.0);
}

TEST(PlacementTest, MoreProxiesThanNodesIsFine) {
  const Fixture f;
  const auto result = GreedyPlacement(
      f.tree, static_cast<uint32_t>(f.tree.interior_nodes.size()) + 10, 1.0);
  EXPECT_LE(result.proxies.size(), f.tree.interior_nodes.size());
}

TEST(PlacementTest, DepthRestrictedPlacementHonorsDepths) {
  const Fixture f;
  for (const uint32_t depth : {1u, 2u, 3u}) {
    const auto result =
        GreedyPlacementAtDepths(*f.topology, f.tree, 4, 1.0, {depth});
    for (const NodeId node : result.proxies) {
      EXPECT_EQ(f.topology->depth(node), depth);
    }
  }
}

TEST(PlacementTest, UnrestrictedDominatesAnySingleDepth) {
  // The *optimum* over all depths dominates any single-depth optimum;
  // greedy is a heuristic, so allow it a small slack against the
  // restricted variants.
  const Fixture f;
  const double unrestricted = GreedyPlacement(f.tree, 4, 1.0).saved_bytes_hops;
  for (const uint32_t depth : {1u, 2u, 3u}) {
    const double restricted =
        GreedyPlacementAtDepths(*f.topology, f.tree, 4, 1.0, {depth})
            .saved_bytes_hops;
    EXPECT_GE(unrestricted, 0.97 * restricted) << "depth " << depth;
  }
}

TEST(PlacementTest, AllDepthsEqualsUnrestricted) {
  const Fixture f;
  const auto a = GreedyPlacement(f.tree, 3, 1.0);
  const auto b = GreedyPlacementAtDepths(*f.topology, f.tree, 3, 1.0,
                                         {1, 2, 3});
  EXPECT_DOUBLE_EQ(a.saved_bytes_hops, b.saved_bytes_hops);
}

TEST(PlacementTest, RandomPlacementDistinctNodes) {
  const Fixture f;
  Rng rng(5);
  const auto result = RandomPlacement(f.tree, 5, 1.0, &rng);
  std::set<NodeId> unique(result.proxies.begin(), result.proxies.end());
  EXPECT_EQ(unique.size(), result.proxies.size());
}

// --- Bit-identity pins for the membership-bitmap refactor: the
// epoch-stamped set replaced per-hop / per-candidate std::find scans in
// EvaluatePlacement and the greedy core. The reference implementations
// below are the pre-refactor scans; results must match bit for bit. ---

/// Pre-refactor EvaluatePlacement: O(k) std::find per route hop. Same FP
/// accumulation order as the library version.
double EvaluatePlacementLegacyFind(const ClienteleTree& tree,
                                   const std::vector<NodeId>& proxies,
                                   double hit_ratio) {
  double saved = 0.0;
  for (const auto& leaf : tree.leaves) {
    uint32_t best = 0;
    for (uint32_t d = 1; d < leaf.path_from_server.size(); ++d) {
      if (std::find(proxies.begin(), proxies.end(),
                    leaf.path_from_server[d]) != proxies.end()) {
        best = std::max(best, d);
      }
    }
    saved += static_cast<double>(leaf.bytes) * hit_ratio * best;
  }
  return saved;
}

/// Pre-refactor greedy: std::find membership on the chosen vector. The
/// winning node each round is a pure function of the per-node gains (FP
/// sums over entries in (leaf, dist) scan order, as in the library) plus
/// the min-node-id tie-break, so map iteration order does not matter.
std::vector<NodeId> GreedyLegacyFind(const ClienteleTree& tree, uint32_t k) {
  struct Entry {
    uint32_t leaf = 0;
    uint32_t dist = 0;
  };
  std::map<NodeId, std::vector<Entry>> by_node;
  for (uint32_t li = 0; li < tree.leaves.size(); ++li) {
    const auto& path = tree.leaves[li].path_from_server;
    for (uint32_t d = 1; d < path.size(); ++d) {
      by_node[path[d]].push_back({li, d});
    }
  }
  std::vector<uint32_t> best_dist(tree.leaves.size(), 0);
  std::vector<NodeId> chosen;
  for (uint32_t round = 0; round < k; ++round) {
    NodeId best_node = kInvalidNode;
    double best_gain = 0.0;
    for (const auto& [node, entries] : by_node) {
      if (std::find(chosen.begin(), chosen.end(), node) != chosen.end()) {
        continue;
      }
      double gain = 0.0;
      for (const auto& e : entries) {
        if (e.dist > best_dist[e.leaf]) {
          gain += static_cast<double>(tree.leaves[e.leaf].bytes) *
                  (e.dist - best_dist[e.leaf]);
        }
      }
      if (gain > best_gain ||
          (gain == best_gain && best_node != kInvalidNode &&
           node < best_node)) {
        best_gain = gain;
        best_node = node;
      }
    }
    if (best_node == kInvalidNode || best_gain <= 0.0) break;
    chosen.push_back(best_node);
    for (const auto& e : by_node.at(best_node)) {
      best_dist[e.leaf] = std::max(best_dist[e.leaf], e.dist);
    }
  }
  return chosen;
}

TEST(PlacementBitIdentityTest, EvaluateMatchesLegacyFindScan) {
  const Fixture f;
  for (const uint32_t k : {1u, 2u, 4u, 8u}) {
    const auto greedy = GreedyPlacement(f.tree, k, 1.0);
    EXPECT_EQ(EvaluatePlacement(f.tree, greedy.proxies, 1.0),
              EvaluatePlacementLegacyFind(f.tree, greedy.proxies, 1.0))
        << "k=" << k;
  }
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto random = RandomPlacement(f.tree, 5, 0.7, &rng);
    EXPECT_EQ(EvaluatePlacement(f.tree, random.proxies, 0.7),
              EvaluatePlacementLegacyFind(f.tree, random.proxies, 0.7))
        << "trial " << trial;
  }
}

TEST(PlacementBitIdentityTest, GreedyChoosesSameProxiesAsLegacyFind) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Fixture f(seed);
    for (const uint32_t k : {1u, 2u, 4u, 8u}) {
      const auto now = GreedyPlacement(f.tree, k, 1.0);
      const std::vector<NodeId> legacy = GreedyLegacyFind(f.tree, k);
      EXPECT_EQ(now.proxies, legacy) << "seed " << seed << " k " << k;
      EXPECT_EQ(now.saved_bytes_hops,
                EvaluatePlacementLegacyFind(f.tree, legacy, 1.0))
          << "seed " << seed << " k " << k;
    }
  }
}

// --- ProximityPlacement ---

TEST(ProximityPlacementTest, ZeroWeightUncappedEqualsGreedy) {
  const Fixture f;
  ProximityPlacementConfig config;
  config.distance_weight = 0.0;
  config.neighborhood_cap = 0;
  for (const uint32_t k : {1u, 2u, 4u}) {
    const auto greedy = GreedyPlacement(f.tree, k, 1.0);
    const auto prox = ProximityPlacement(f.tree, k, 1.0, config);
    EXPECT_EQ(greedy.proxies, prox.proxies) << "k=" << k;
    EXPECT_EQ(greedy.saved_bytes_hops, prox.saved_bytes_hops) << "k=" << k;
  }
}

TEST(ProximityPlacementTest, DeterministicAcrossCalls) {
  const Fixture f;
  ProximityPlacementConfig config;
  config.distance_weight = 1.5;
  config.neighborhood_cap = 2;
  const auto a = ProximityPlacement(f.tree, 4, 1.0, config);
  const auto b = ProximityPlacement(f.tree, 4, 1.0, config);
  EXPECT_EQ(a.proxies, b.proxies);
  EXPECT_EQ(a.saved_bytes_hops, b.saved_bytes_hops);
}

TEST(ProximityPlacementTest, CapDeeperThanAnyPathEqualsUncapped) {
  const Fixture f;
  uint32_t max_hops = 0;
  for (const auto& leaf : f.tree.leaves) {
    max_hops = std::max(
        max_hops, static_cast<uint32_t>(leaf.path_from_server.size() - 1));
  }
  ProximityPlacementConfig uncapped;
  uncapped.distance_weight = 0.8;
  uncapped.neighborhood_cap = 0;
  ProximityPlacementConfig wide = uncapped;
  wide.neighborhood_cap = max_hops + 3;
  const auto a = ProximityPlacement(f.tree, 4, 1.0, uncapped);
  const auto b = ProximityPlacement(f.tree, 4, 1.0, wide);
  EXPECT_EQ(a.proxies, b.proxies);
}

TEST(ProximityPlacementTest, SavedUsesStandardObjective) {
  // Finish() scores the chosen set with the undiscounted objective, so the
  // reported saving is comparable with the other strategies.
  const Fixture f;
  ProximityPlacementConfig config;
  config.distance_weight = 2.0;
  config.neighborhood_cap = 1;
  const auto prox = ProximityPlacement(f.tree, 4, 1.0, config);
  EXPECT_EQ(prox.saved_bytes_hops,
            EvaluatePlacement(f.tree, prox.proxies, 1.0));
  EXPECT_LE(prox.proxies.size(), 4u);
}

TEST(ProximityPlacementTest, StrongWeightDoesNotBeatGreedyObjective) {
  // Distance discounting optimises a different objective; on the standard
  // one it can only tie or lose to the undiscounted greedy (both are
  // heuristics, so allow a sliver of slack).
  const Fixture f;
  const auto greedy = GreedyPlacement(f.tree, 4, 1.0);
  ProximityPlacementConfig config;
  config.distance_weight = 8.0;
  config.neighborhood_cap = 1;
  const auto prox = ProximityPlacement(f.tree, 4, 1.0, config);
  EXPECT_LE(prox.saved_bytes_hops, greedy.saved_bytes_hops * 1.02);
}

}  // namespace
}  // namespace sds::net

/// RouteTable must be a pure cache of Topology::Route from a fixed root:
/// identical routes, identical hop counts, O(1) lookups notwithstanding.

#include "net/route_table.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "util/rng.h"

namespace sds::net {
namespace {

Topology MakeTopology() {
  Rng rng(1234);
  TopologyConfig config;
  return Topology::Generate(config, /*num_clients=*/64,
                            std::vector<bool>(64, true),
                            /*num_servers=*/2, &rng);
}

TEST(RouteTableTest, MatchesTopologyRouteFromEveryNode) {
  const Topology topology = MakeTopology();
  const NodeId root = topology.server_node(0);
  const RouteTable table(topology, root);
  ASSERT_EQ(table.root(), root);
  ASSERT_EQ(table.num_nodes(), topology.num_nodes());
  for (NodeId to = 0; to < topology.num_nodes(); ++to) {
    const std::vector<NodeId> expected = topology.Route(root, to);
    EXPECT_EQ(table.route(to), expected) << "to " << to;
    EXPECT_EQ(table.hops(to), topology.HopCount(root, to)) << "to " << to;
    ASSERT_FALSE(table.route(to).empty());
    EXPECT_EQ(table.route(to).front(), root);
    EXPECT_EQ(table.route(to).back(), to);
    EXPECT_EQ(table.route(to).size(), table.hops(to) + 1u);
  }
}

TEST(RouteTableTest, RouteToRootIsJustTheRoot) {
  const Topology topology = MakeTopology();
  const NodeId root = topology.server_node(1);
  const RouteTable table(topology, root);
  ASSERT_EQ(table.route(root).size(), 1u);
  EXPECT_EQ(table.route(root)[0], root);
  EXPECT_EQ(table.hops(root), 0u);
}

}  // namespace
}  // namespace sds::net

#include "net/topology.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::net {
namespace {

Topology MakeTopology(uint32_t num_clients = 100, uint32_t num_servers = 1,
                      uint64_t seed = 1) {
  TopologyConfig config;
  config.regions = 4;
  config.orgs_per_region = 3;
  config.subnets_per_org = 2;
  std::vector<bool> remote(num_clients);
  for (uint32_t c = 0; c < num_clients; ++c) remote[c] = c % 3 != 0;
  Rng rng(seed);
  return Topology::Generate(config, num_clients, remote, num_servers, &rng);
}

TEST(TopologyTest, NodeCountMatchesHierarchy) {
  const Topology topo = MakeTopology();
  // 1 root + 4 regions + 12 orgs + 24 subnets.
  EXPECT_EQ(topo.num_nodes(), 1u + 4u + 12u + 24u);
}

TEST(TopologyTest, DepthsAreConsistent) {
  const Topology topo = MakeTopology();
  EXPECT_EQ(topo.depth(topo.root()), 0u);
  for (NodeId n = 1; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(topo.depth(n), topo.depth(topo.parent(n)) + 1);
    EXPECT_LE(topo.depth(n), 3u);
  }
}

TEST(TopologyTest, ClientsAttachToSubnets) {
  const Topology topo = MakeTopology();
  for (uint32_t c = 0; c < topo.num_clients(); ++c) {
    EXPECT_EQ(topo.depth(topo.client_node(c)), 3u);
  }
}

TEST(TopologyTest, HopCountProperties) {
  const Topology topo = MakeTopology();
  for (NodeId a = 0; a < topo.num_nodes(); a += 3) {
    EXPECT_EQ(topo.HopCount(a, a), 0u);
    for (NodeId b = 0; b < topo.num_nodes(); b += 5) {
      EXPECT_EQ(topo.HopCount(a, b), topo.HopCount(b, a));
      EXPECT_LE(topo.HopCount(a, b), 6u);  // diameter of a depth-3 tree
    }
  }
}

TEST(TopologyTest, TriangleInequalityOnTree) {
  const Topology topo = MakeTopology();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId c = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    EXPECT_LE(topo.HopCount(a, c),
              topo.HopCount(a, b) + topo.HopCount(b, c));
  }
}

TEST(TopologyTest, RouteEndpointsAndLength) {
  const Topology topo = MakeTopology();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const auto route = topo.Route(a, b);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front(), a);
    EXPECT_EQ(route.back(), b);
    EXPECT_EQ(route.size(), topo.HopCount(a, b) + 1);
    // Consecutive route nodes are parent/child pairs.
    for (size_t j = 1; j < route.size(); ++j) {
      EXPECT_TRUE(topo.parent(route[j]) == route[j - 1] ||
                  topo.parent(route[j - 1]) == route[j]);
    }
  }
}

TEST(TopologyTest, OnRouteMatchesRoute) {
  const Topology topo = MakeTopology();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const auto route = topo.Route(a, b);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      const bool expected =
          std::find(route.begin(), route.end(), n) != route.end();
      EXPECT_EQ(topo.OnRoute(n, a, b), expected)
          << "node " << n << " route " << a << "->" << b;
    }
  }
}

TEST(TopologyTest, LcaIsCommonAncestor) {
  const Topology topo = MakeTopology();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(topo.num_nodes()));
    const NodeId lca = topo.LowestCommonAncestor(a, b);
    // lca is an ancestor of both.
    for (const NodeId x : {a, b}) {
      NodeId n = x;
      bool found = false;
      while (true) {
        if (n == lca) {
          found = true;
          break;
        }
        if (n == topo.root()) break;
        n = topo.parent(n);
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(TopologyTest, LocalClientsNearServer) {
  const uint32_t n = 300;
  TopologyConfig config;
  std::vector<bool> remote(n);
  for (uint32_t c = 0; c < n; ++c) remote[c] = c % 2 == 0;
  Rng rng(6);
  const Topology topo = Topology::Generate(config, n, remote, 1, &rng);
  const NodeId server = topo.server_node(0);
  double local_sum = 0.0, remote_sum = 0.0;
  uint32_t locals = 0, remotes = 0;
  for (uint32_t c = 0; c < n; ++c) {
    const double h = topo.HopCount(topo.client_node(c), server);
    if (remote[c]) {
      remote_sum += h;
      ++remotes;
    } else {
      local_sum += h;
      ++locals;
    }
  }
  EXPECT_LT(local_sum / locals, remote_sum / remotes);
  // Local clients stay within the organisation (<= 2 hops).
  for (uint32_t c = 0; c < n; ++c) {
    if (!remote[c]) {
      EXPECT_LE(topo.HopCount(topo.client_node(c), server), 2u);
    }
  }
}

TEST(TopologyTest, ServersInDistinctSubnets) {
  const Topology topo = MakeTopology(50, 5, 7);
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = a + 1; b < 5; ++b) {
      EXPECT_NE(topo.server_node(a), topo.server_node(b));
    }
  }
}

TEST(TopologyTest, Deterministic) {
  const Topology a = MakeTopology(100, 1, 9);
  const Topology b = MakeTopology(100, 1, 9);
  for (uint32_t c = 0; c < 100; ++c) {
    EXPECT_EQ(a.client_node(c), b.client_node(c));
  }
}

}  // namespace
}  // namespace sds::net

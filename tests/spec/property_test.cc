/// Property tests: accounting invariants of the speculation simulator must
/// hold across the whole configuration space (cache models x modes x
/// thresholds), and closure properties must hold on random matrices.

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "spec/closure.h"
#include "spec/simulator.h"
#include "util/rng.h"

namespace sds::spec {
namespace {

// ---------------------------------------------------------------------------
// Simulator invariants under a parameter sweep
// ---------------------------------------------------------------------------

class SimulatorInvariantsTest
    : public ::testing::TestWithParam<
          std::tuple<double /*tp*/, double /*session_timeout*/,
                     int /*mode*/, bool /*cooperative*/>> {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
    sim_ = new SpeculationSimulator(&workload_->corpus(), &workload_->clean());
  }
  static void TearDownTestSuite() {
    delete sim_;
    delete workload_;
    sim_ = nullptr;
    workload_ = nullptr;
  }
  static core::Workload* workload_;
  static SpeculationSimulator* sim_;
};

core::Workload* SimulatorInvariantsTest::workload_ = nullptr;
SpeculationSimulator* SimulatorInvariantsTest::sim_ = nullptr;

TEST_P(SimulatorInvariantsTest, AccountingHolds) {
  const auto [tp, session_timeout, mode_int, cooperative] = GetParam();
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = tp;
  config.cache.session_timeout = session_timeout;
  config.mode = static_cast<ServiceMode>(mode_int);
  config.cooperative_clients = cooperative;

  const RunTotals t = sim_->Run(config);

  // Every replayed request is accounted.
  EXPECT_GT(t.client_requests, 0u);
  // Requests that reached the server do not exceed client requests plus
  // background prefetch/hint fetches.
  EXPECT_LE(t.server_requests, t.client_requests + t.prefetch_requests);
  EXPECT_LE(t.prefetch_requests, t.server_requests);
  // Byte accounting.
  EXPECT_LE(t.miss_bytes, t.requested_bytes + 1e-6);
  EXPECT_GE(t.bytes_sent, t.miss_bytes - 1e-6);
  EXPECT_GE(t.speculative_bytes, 0.0);
  EXPECT_LE(t.speculative_hits, t.speculative_docs_sent);
  EXPECT_GE(t.total_latency, 0.0);
  // Wasted bytes cannot exceed what was speculated.
  EXPECT_LE(t.wasted_speculative_bytes, t.speculative_bytes + 1e-6);

  // Comparing against the plain run: speculation never increases server
  // load for push modes (it can only turn misses into hits), and never
  // sends fewer bytes than the plain protocol.
  SpeculationConfig plain = config;
  plain.mode = ServiceMode::kNone;
  const RunTotals base = sim_->Run(plain);
  EXPECT_EQ(t.client_requests, base.client_requests);
  EXPECT_DOUBLE_EQ(t.requested_bytes, base.requested_bytes);
  EXPECT_GE(t.bytes_sent, base.bytes_sent - 1e-6);
  if (config.mode == ServiceMode::kSpeculativePush) {
    EXPECT_LE(t.server_requests, base.server_requests);
    EXPECT_LE(t.miss_bytes, base.miss_bytes + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorInvariantsTest,
    ::testing::Combine(
        ::testing::Values(1.0, 0.5, 0.1),
        ::testing::Values(0.0, 3600.0, kInfiniteTime),
        ::testing::Values(static_cast<int>(ServiceMode::kSpeculativePush),
                          static_cast<int>(ServiceMode::kServerHints),
                          static_cast<int>(ServiceMode::kHybrid)),
        ::testing::Bool()));

TEST(SimulatorExactnessTest, PlainRunLatencyIsClosedForm) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  SpeculationSimulator sim(&w.corpus(), &w.clean());
  SpeculationConfig config = core::BaselineSpecConfig();
  config.mode = ServiceMode::kNone;
  const RunTotals t = sim.Run(config);
  // Without speculation: latency = ServCost per miss + CommCost per missed
  // byte, exactly.
  EXPECT_NEAR(t.total_latency,
              config.serv_cost * static_cast<double>(t.server_requests) +
                  config.comm_cost * t.miss_bytes,
              1e-6);
  EXPECT_DOUBLE_EQ(t.bytes_sent, t.miss_bytes);
}

// ---------------------------------------------------------------------------
// Closure properties on random sparse matrices
// ---------------------------------------------------------------------------

SparseProbMatrix RandomMatrix(uint64_t seed, size_t docs, size_t edges) {
  Rng rng(seed);
  SparseProbMatrix p(docs);
  std::set<std::pair<trace::DocumentId, trace::DocumentId>> used;
  for (size_t e = 0; e < edges; ++e) {
    const auto i = static_cast<trace::DocumentId>(rng.NextBounded(docs));
    const auto j = static_cast<trace::DocumentId>(rng.NextBounded(docs));
    if (i == j || !used.insert({i, j}).second) continue;
    p.Add(i, j, 0.05 + 0.95 * rng.NextDouble());
  }
  p.SortRows();
  return p;
}

class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, ClosureInvariants) {
  const SparseProbMatrix p = RandomMatrix(GetParam(), 40, 160);
  ClosureConfig config;
  config.min_probability = 0.05;
  const SparseProbMatrix closure = ComputeClosure(p, config);

  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    // Dominates direct edges (that survive the pruning threshold).
    for (const auto& e : p.Row(i)) {
      if (e.probability >= config.min_probability) {
        EXPECT_GE(closure.Get(i, e.doc) + 1e-6, e.probability);
      }
    }
    float prev = 1.0f;
    for (const auto& e : closure.Row(i)) {
      EXPECT_GT(e.probability, 0.0f);
      EXPECT_LE(e.probability, 1.0f);
      EXPECT_LE(e.probability, prev);  // sorted
      EXPECT_NE(e.doc, i);             // no self loops
      prev = e.probability;
    }
  }
}

TEST_P(ClosurePropertyTest, DepthOneEqualsDirectEdges) {
  const SparseProbMatrix p = RandomMatrix(GetParam() + 100, 30, 90);
  ClosureConfig config;
  config.min_probability = 0.05;
  config.max_depth = 1;
  const SparseProbMatrix closure = ComputeClosure(p, config);
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : p.Row(i)) {
      if (e.probability >= config.min_probability) {
        EXPECT_FLOAT_EQ(closure.Get(i, e.doc), e.probability);
      }
    }
    // Nothing beyond the direct successors.
    for (const auto& e : closure.Row(i)) {
      EXPECT_GT(p.Get(i, e.doc), 0.0);
    }
  }
}

TEST_P(ClosurePropertyTest, HigherThresholdPrunesMonotonically) {
  const SparseProbMatrix p = RandomMatrix(GetParam() + 200, 30, 120);
  ClosureConfig loose;
  loose.min_probability = 0.05;
  ClosureConfig strict;
  strict.min_probability = 0.3;
  const SparseProbMatrix l = ComputeClosure(p, loose);
  const SparseProbMatrix s = ComputeClosure(p, strict);
  // Every strict entry appears in the loose closure with the same value
  // (pruning cannot *create* chains; it can lower values only by cutting
  // intermediate hops, so >= is the invariant for the entry value).
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : s.Row(i)) {
      EXPECT_GE(l.Get(i, e.doc) + 1e-6, e.probability);
    }
    EXPECT_LE(s.Row(i).size(), l.Row(i).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sds::spec

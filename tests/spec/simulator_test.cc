#include "spec/simulator.h"

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"

namespace sds::spec {
namespace {

class SpecSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
    sim_ = new SpeculationSimulator(&workload_->corpus(), &workload_->clean());
  }
  static void TearDownTestSuite() {
    delete sim_;
    delete workload_;
    sim_ = nullptr;
    workload_ = nullptr;
  }

  static SpeculationConfig Baseline(double tp = 0.25) {
    SpeculationConfig config = core::BaselineSpecConfig();
    config.policy.threshold = tp;
    return config;
  }

  static core::Workload* workload_;
  static SpeculationSimulator* sim_;
};

core::Workload* SpecSimTest::workload_ = nullptr;
SpeculationSimulator* SpecSimTest::sim_ = nullptr;

TEST_F(SpecSimTest, BaselineRunAccountsEveryRequest) {
  SpeculationConfig config = Baseline();
  config.mode = ServiceMode::kNone;
  const RunTotals totals = sim_->Run(config);
  size_t clean_docs = 0;
  for (const auto& r : workload_->clean().requests) {
    if (r.kind == trace::RequestKind::kDocument ||
        r.kind == trace::RequestKind::kAlias) {
      ++clean_docs;
    }
  }
  EXPECT_EQ(totals.client_requests, clean_docs);
  EXPECT_EQ(totals.speculative_docs_sent, 0u);
  EXPECT_DOUBLE_EQ(totals.speculative_bytes, 0.0);
  EXPECT_LE(totals.server_requests, totals.client_requests);
}

TEST_F(SpecSimTest, NoCacheBaselineEveryRequestHitsServer) {
  SpeculationConfig config = Baseline();
  config.mode = ServiceMode::kNone;
  config.cache.session_timeout = 0.0;
  const RunTotals totals = sim_->Run(config);
  EXPECT_EQ(totals.server_requests, totals.client_requests);
  EXPECT_DOUBLE_EQ(totals.miss_bytes, totals.requested_bytes);
  EXPECT_DOUBLE_EQ(totals.bytes_sent, totals.requested_bytes);
}

TEST_F(SpecSimTest, SpeculationReducesLoadAtSomeTrafficCost) {
  const SpeculationMetrics m = sim_->Evaluate(Baseline(0.25));
  EXPECT_LT(m.server_load_ratio, 1.0);
  EXPECT_LT(m.service_time_ratio, 1.0);
  EXPECT_LT(m.miss_rate_ratio, 1.0);
  EXPECT_GE(m.bandwidth_ratio, 1.0);
}

TEST_F(SpecSimTest, ThresholdMonotonicity) {
  // Lower Tp -> more speculation -> no less traffic and no more load.
  const SpeculationMetrics strict = sim_->Evaluate(Baseline(0.8));
  const SpeculationMetrics loose = sim_->Evaluate(Baseline(0.2));
  EXPECT_GE(loose.bandwidth_ratio, strict.bandwidth_ratio - 1e-6);
  EXPECT_LE(loose.server_load_ratio, strict.server_load_ratio + 1e-6);
}

TEST_F(SpecSimTest, EmbeddingOnlySpeculationNearlyFree) {
  // Tp = 1 pushes only certain successors; traffic increase must be tiny
  // (the paper: sending embedded documents cannot waste bandwidth).
  const SpeculationMetrics m = sim_->Evaluate(Baseline(1.0));
  EXPECT_LT(m.extra_traffic, 0.05);
  EXPECT_LE(m.server_load_ratio, 1.0);
}

TEST_F(SpecSimTest, CooperativeClientsNeverUseMoreBandwidth) {
  SpeculationConfig blind = Baseline(0.2);
  SpeculationConfig coop = blind;
  coop.cooperative_clients = true;
  const RunTotals blind_run = sim_->Run(blind);
  const RunTotals coop_run = sim_->Run(coop);
  EXPECT_LE(coop_run.bytes_sent, blind_run.bytes_sent);
  // Same or fewer misses (the cooperative server still pushes everything
  // useful).
  EXPECT_LE(coop_run.server_requests, blind_run.server_requests + 5);
}

TEST_F(SpecSimTest, MaxSizeReducesTraffic) {
  SpeculationConfig unlimited = Baseline(0.2);
  SpeculationConfig limited = unlimited;
  limited.policy.max_size = 8 * 1024;
  const RunTotals u = sim_->Run(unlimited);
  const RunTotals l = sim_->Run(limited);
  EXPECT_LT(l.speculative_bytes, u.speculative_bytes);
}

TEST_F(SpecSimTest, UpdateCycleStalenessDegrades) {
  SpeculationConfig fresh = Baseline(0.25);
  fresh.update_cycle_days = 1;
  SpeculationConfig stale = Baseline(0.25);
  stale.update_cycle_days = 10;  // trace is only 14 days long
  const SpeculationMetrics f = sim_->Evaluate(fresh);
  const SpeculationMetrics s = sim_->Evaluate(stale);
  EXPECT_LE(f.server_load_ratio, s.server_load_ratio + 0.02);
}

TEST_F(SpecSimTest, RawPVersusClosure) {
  SpeculationConfig closure = Baseline(0.3);
  SpeculationConfig raw = closure;
  raw.use_closure = false;
  const RunTotals c = sim_->Run(closure);
  const RunTotals r = sim_->Run(raw);
  // The closure dominates P entrywise, so it speculates at least as much.
  EXPECT_GE(c.speculative_docs_sent, r.speculative_docs_sent);
}

TEST_F(SpecSimTest, ClientPrefetchIssuesPrefetchRequests) {
  SpeculationConfig config = Baseline(0.25);
  config.mode = ServiceMode::kClientPrefetch;
  // Profiles can only help against a cache that forgets; with an infinite
  // multi-session cache everything the profile knows is already cached.
  config.cache.session_timeout = kHour;
  const RunTotals totals = sim_->Run(config);
  EXPECT_GT(totals.prefetch_requests, 0u);
  EXPECT_EQ(totals.speculative_docs_sent, totals.prefetch_requests);
}

TEST_F(SpecSimTest, HybridPushesLessThanFullSpeculation) {
  SpeculationConfig full = Baseline(0.25);
  full.cache.session_timeout = kHour;
  SpeculationConfig hybrid = full;
  hybrid.mode = ServiceMode::kHybrid;
  const RunTotals f = sim_->Run(full);
  const RunTotals h = sim_->Run(hybrid);
  // The hybrid's pushes are restricted to near-certain documents; its
  // remaining speculation comes from client prefetching.
  EXPECT_LT(h.speculative_bytes - h.prefetch_requests * 0.0,
            f.speculative_bytes * 1.5);
  EXPECT_GT(h.prefetch_requests, 0u);
}

TEST_F(SpecSimTest, ServerHintsNeverSendDuplicateBytes) {
  SpeculationConfig push = Baseline(0.25);
  SpeculationConfig hints = push;
  hints.mode = ServiceMode::kServerHints;
  const RunTotals p = sim_->Run(push);
  const RunTotals h = sim_->Run(hints);
  // Hints are client-filtered, so they can never push a cached document:
  // no wasted duplicate bytes, less total traffic than blind push.
  EXPECT_LE(h.bytes_sent, p.bytes_sent + 1e-6);
  // But every accepted hint is a separate server request.
  EXPECT_GT(h.prefetch_requests, 0u);
  EXPECT_GT(h.server_requests, p.server_requests);
  // Same candidates reach the cache either way: miss bytes match closely.
  EXPECT_NEAR(h.miss_bytes / p.miss_bytes, 1.0, 0.1);
}

TEST_F(SpecSimTest, DecayEstimatorComparableToWindow) {
  SpeculationConfig window = Baseline(0.25);
  SpeculationConfig decay = window;
  decay.estimator = SpeculationConfig::EstimatorKind::kExponentialDecay;
  decay.decay_per_day = 0.9;
  const SpeculationMetrics w = sim_->Evaluate(window);
  const SpeculationMetrics d = sim_->Evaluate(decay);
  // The aged estimator must deliver speculation of similar quality on a
  // short trace (both see essentially the same history).
  EXPECT_LT(d.server_load_ratio, 1.0);
  EXPECT_NEAR(d.server_load_ratio, w.server_load_ratio, 0.1);
}

TEST_F(SpecSimTest, SpeculativeHitsAreCounted) {
  const RunTotals totals = sim_->Run(Baseline(0.25));
  EXPECT_GT(totals.speculative_hits, 0u);
  EXPECT_LE(totals.speculative_hits, totals.speculative_docs_sent);
}

TEST_F(SpecSimTest, ChargingSpeculativeLatencyIsSlower) {
  SpeculationConfig cheap = Baseline(0.2);
  SpeculationConfig charged = cheap;
  charged.charge_speculative_latency = true;
  const RunTotals a = sim_->Run(cheap);
  const RunTotals b = sim_->Run(charged);
  EXPECT_GT(b.total_latency, a.total_latency);
}

TEST_F(SpecSimTest, DeterministicAcrossRuns) {
  const RunTotals a = sim_->Run(Baseline(0.3));
  const RunTotals b = sim_->Run(Baseline(0.3));
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_DOUBLE_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_DOUBLE_EQ(a.total_latency, b.total_latency);
}

TEST_F(SpecSimTest, MetricsRatiosConsistent) {
  const SpeculationMetrics m = sim_->Evaluate(Baseline(0.3));
  EXPECT_NEAR(m.bandwidth_ratio,
              m.with_speculation.bytes_sent /
                  m.without_speculation.bytes_sent,
              1e-12);
  EXPECT_NEAR(m.extra_traffic, m.bandwidth_ratio - 1.0, 1e-12);
}

// --- Self-protection stack (docs/FAULTS.md "Cascades and self-protection").

// A capacity model tight enough that the eval-window request rate alone
// trips the admission threshold: `solo_load` busy-seconds of service per
// wall second if the whole clean stream hit the server.
net::LoadTrackerConfig TightSpecLoad(const core::Workload& workload,
                                     double solo_load) {
  net::LoadTrackerConfig load;
  load.window_s = 12.0 * 3600.0;
  load.brownout_duration_s = 4.0 * 3600.0;
  load.service_overhead_s = solo_load * workload.clean().Span() /
                            static_cast<double>(workload.clean().size());
  load.service_rate_bytes_per_s = 1e12;
  return load;
}

net::FaultSchedule ServerOutageSchedule(const core::Workload& workload) {
  net::FaultInjectionConfig fault_config;
  fault_config.horizon_days = workload.clean().Span() / kDay + 1.0;
  fault_config.server_failure_rate_per_day = 0.5;
  fault_config.mean_outage_days = 0.5;
  Rng rng(271828);
  return net::GenerateFaultSchedule(workload.topology(), fault_config, &rng);
}

TEST_F(SpecSimTest, ArmedButCoolProtectionsAreBitIdentical) {
  // With ample capacity, no faults, and breakers that never see a failure,
  // the armed stack must be a pure observer: every total matches the plain
  // run exactly (this is what lets fig8 arm track_load in all arms).
  const RunTotals plain = sim_->Run(Baseline(0.3));
  SpeculationConfig armed = Baseline(0.3);
  armed.protection.track_load = true;
  armed.protection.load = TightSpecLoad(*workload_, 1e-6);
  armed.protection.circuit_breakers = true;
  armed.protection.retry_budget = true;
  armed.protection.admission_control = true;
  const RunTotals cool = sim_->Run(armed);
  EXPECT_EQ(plain.server_requests, cool.server_requests);
  EXPECT_EQ(plain.speculative_docs_sent, cool.speculative_docs_sent);
  EXPECT_DOUBLE_EQ(plain.bytes_sent, cool.bytes_sent);
  EXPECT_DOUBLE_EQ(plain.total_latency, cool.total_latency);
  EXPECT_EQ(cool.emergent_brownouts, 0u);
  EXPECT_EQ(cool.breaker_open_transitions, 0u);
  EXPECT_EQ(cool.shed_speculative_docs, 0u);
  EXPECT_EQ(cool.breaker_fast_fails, 0u);
}

TEST_F(SpecSimTest, AdmissionControlShedsSpeculationUnderPressure) {
  const RunTotals healthy = sim_->Run(Baseline(0.25));
  ASSERT_GT(healthy.speculative_docs_sent, 0u);
  SpeculationConfig tight = Baseline(0.25);
  tight.protection.track_load = true;
  tight.protection.load = TightSpecLoad(*workload_, 1.5);
  tight.protection.admission_control = true;
  const RunTotals shed = sim_->Run(tight);
  // Speculative pushes are shed first; demand service never is.
  EXPECT_GT(shed.shed_speculative_docs, 0u);
  EXPECT_LT(shed.speculative_docs_sent, healthy.speculative_docs_sent);
  EXPECT_EQ(shed.client_requests, healthy.client_requests);
  EXPECT_EQ(shed.unavailable_requests, 0u);
  // A colder cache (shed pushes never land) can only add misses.
  EXPECT_GE(shed.server_requests, healthy.server_requests);
}

TEST_F(SpecSimTest, RetryBudgetCapsOutageRetryStorm) {
  const net::FaultSchedule schedule = ServerOutageSchedule(*workload_);
  ASSERT_FALSE(schedule.events().empty());
  SpeculationConfig stormy = Baseline(0.25);
  stormy.faults = &schedule;
  stormy.retry.max_attempts = 4;
  stormy.retry_jitter_seed = 314159;
  const RunTotals unbudgeted = sim_->Run(stormy);
  ASSERT_GT(unbudgeted.retry_attempts, 0u);
  SpeculationConfig budgeted = stormy;
  budgeted.protection.retry_budget = true;
  budgeted.protection.budget.max_retry_ratio = 0.05;
  budgeted.protection.budget.min_retries_per_window = 1;
  const RunTotals capped = sim_->Run(budgeted);
  EXPECT_GT(capped.retries_suppressed_by_budget, 0u);
  EXPECT_LT(capped.retry_attempts, unbudgeted.retry_attempts);
  // Suppressed retries were futile (the server is down schedule-wide for
  // the whole outage), so availability is unchanged.
  EXPECT_EQ(capped.unavailable_requests, unbudgeted.unavailable_requests);
}

TEST_F(SpecSimTest, BreakersFailFastDuringOutages) {
  const net::FaultSchedule schedule = ServerOutageSchedule(*workload_);
  ASSERT_FALSE(schedule.events().empty());
  SpeculationConfig stormy = Baseline(0.25);
  stormy.faults = &schedule;
  stormy.retry.max_attempts = 4;
  stormy.retry_jitter_seed = 314159;
  const RunTotals off = sim_->Run(stormy);
  SpeculationConfig guarded = stormy;
  guarded.protection.circuit_breakers = true;
  guarded.protection.breaker.failure_threshold = 3;
  guarded.protection.breaker.cooldown_s = 900.0;
  const RunTotals on = sim_->Run(guarded);
  EXPECT_GT(on.breaker_open_transitions, 0u);
  EXPECT_GT(on.breaker_fast_fails, 0u);
  // Fast-failed misses skip the timeout ladder entirely.
  EXPECT_LT(on.retry_attempts, off.retry_attempts);
  EXPECT_LT(on.retry_wait_seconds, off.retry_wait_seconds);
}

TEST(SpecMetricsTest, DegenerateBaselinesYieldUnitRatios) {
  const RunTotals empty_a, empty_b;
  const SpeculationMetrics m = ComputeMetrics(empty_a, empty_b);
  EXPECT_DOUBLE_EQ(m.bandwidth_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.server_load_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.service_time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.miss_rate_ratio, 1.0);
}

}  // namespace
}  // namespace sds::spec

#include "spec/dependency.h"

#include <gtest/gtest.h>

#include "core/workload.h"

namespace sds::spec {
namespace {

trace::Trace MakeTrace(
    std::vector<std::tuple<trace::ClientId, double, trace::DocumentId>>
        entries,
    uint32_t num_clients = 4) {
  trace::Trace t;
  t.num_clients = num_clients;
  for (const auto& [client, time, doc] : entries) {
    trace::Request r;
    r.client = client;
    r.time = time;
    r.doc = doc;
    r.bytes = 100;
    t.requests.push_back(r);
  }
  t.SortByTime();
  return t;
}

DependencyConfig Loose() {
  DependencyConfig c;
  c.min_probability = 0.0;
  c.min_support = 1;
  return c;
}

TEST(DependencyTest, SimplePairProbability) {
  // Doc 0 requested 4 times; doc 1 follows twice within the window.
  const auto t = MakeTrace({{0, 0.0, 0},   {0, 1.0, 1},
                            {0, 100.0, 0}, {0, 101.0, 1},
                            {0, 200.0, 0}, {0, 300.0, 0}});
  const auto p = EstimateDependencies(t, 2, Loose());
  EXPECT_NEAR(p.Get(0, 1), 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(p.Get(1, 0), 0.0);
}

TEST(DependencyTest, WindowBoundaryExclusive) {
  DependencyConfig c = Loose();
  c.window = 5.0;
  c.stride_timeout = 10.0;
  // Gap of exactly 5.0 is inside [0, Tw]; gap of 5.5 is outside.
  const auto in = MakeTrace({{0, 0.0, 0}, {0, 5.0, 1}});
  EXPECT_GT(EstimateDependencies(in, 2, c).Get(0, 1), 0.0);
  const auto out = MakeTrace({{0, 0.0, 0}, {0, 5.5, 1}});
  EXPECT_DOUBLE_EQ(EstimateDependencies(out, 2, c).Get(0, 1), 0.0);
}

TEST(DependencyTest, StrideBreakStopsCounting) {
  DependencyConfig c = Loose();
  c.window = 100.0;
  c.stride_timeout = 5.0;
  // 0 -> (gap 6 s, stride break) -> 1: within the window but not the stride.
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 6.0, 1}});
  EXPECT_DOUBLE_EQ(EstimateDependencies(t, 2, c).Get(0, 1), 0.0);
}

TEST(DependencyTest, ChainWithinStrideCounts) {
  DependencyConfig c = Loose();
  c.window = 10.0;
  c.stride_timeout = 5.0;
  // 0 at t=0, 1 at t=4, 2 at t=8: 0->2 spans two stride-joined gaps.
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 4.0, 1}, {0, 8.0, 2}});
  const auto p = EstimateDependencies(t, 3, c);
  EXPECT_GT(p.Get(0, 1), 0.0);
  EXPECT_GT(p.Get(0, 2), 0.0);
  EXPECT_GT(p.Get(1, 2), 0.0);
}

TEST(DependencyTest, CrossClientPairsNeverCount) {
  const auto t = MakeTrace({{0, 0.0, 0}, {1, 1.0, 1}});
  const auto p = EstimateDependencies(t, 2, Loose());
  EXPECT_DOUBLE_EQ(p.Get(0, 1), 0.0);
}

TEST(DependencyTest, DuplicateFollowerCountedOnce) {
  // One occurrence of 0 followed by 1 twice: p must be 1, not 2.
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 1.0, 1}, {0, 2.0, 1}});
  const auto p = EstimateDependencies(t, 2, Loose());
  EXPECT_NEAR(p.Get(0, 1), 1.0, 1e-6);
}

TEST(DependencyTest, SelfPairsExcluded) {
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 1.0, 0}});
  const auto p = EstimateDependencies(t, 1, Loose());
  EXPECT_DOUBLE_EQ(p.Get(0, 0), 0.0);
}

TEST(DependencyTest, MinProbabilityPrunes) {
  DependencyConfig c = Loose();
  c.min_probability = 0.4;
  // p(0 -> 1) = 1/3 < 0.4.
  const auto t = MakeTrace(
      {{0, 0.0, 0}, {0, 1.0, 1}, {0, 100.0, 0}, {0, 200.0, 0}});
  EXPECT_DOUBLE_EQ(EstimateDependencies(t, 2, c).Get(0, 1), 0.0);
}

TEST(DependencyTest, MinSupportPrunes) {
  DependencyConfig c = Loose();
  c.min_support = 2;
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 1.0, 1}});
  EXPECT_DOUBLE_EQ(EstimateDependencies(t, 2, c).Get(0, 1), 0.0);
}

TEST(DependencyTest, RowsSortedDescending) {
  const auto t = MakeTrace({{0, 0.0, 0},   {0, 1.0, 1},  {0, 2.0, 2},
                            {0, 100.0, 0}, {0, 101.0, 2}});
  const auto p = EstimateDependencies(t, 3, Loose());
  const auto& row = p.Row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_GE(row[0].probability, row[1].probability);
  EXPECT_EQ(row[0].doc, 2u);  // p = 1.0
}

TEST(DependencyTest, TimeRangeRestricts) {
  const auto t = MakeTrace({{0, 0.0, 0}, {0, 1.0, 1},
                            {0, 100000.0, 0}, {0, 100001.0, 1}});
  const auto p = EstimateDependencies(t, 2, Loose(), 0.0, 50000.0);
  EXPECT_NEAR(p.Get(0, 1), 1.0, 1e-6);  // only the first occurrence counted
}

TEST(WindowedCountsTest, AddRemoveSymmetry) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  DependencyConfig config;
  const auto days = CountDailyDependencies(w.clean(), config);
  ASSERT_GE(days.size(), 3u);

  WindowedCounts window(w.corpus().size());
  window.Add(days[0]);
  window.Add(days[1]);
  const auto two_day = window.BuildMatrix(config);
  window.Add(days[2]);
  window.Remove(days[2]);
  const auto still_two_day = window.BuildMatrix(config);
  EXPECT_EQ(two_day.NumEntries(), still_two_day.NumEntries());
  for (trace::DocumentId i = 0; i < two_day.num_docs(); ++i) {
    ASSERT_EQ(two_day.Row(i).size(), still_two_day.Row(i).size());
    for (size_t k = 0; k < two_day.Row(i).size(); ++k) {
      EXPECT_EQ(two_day.Row(i)[k].doc, still_two_day.Row(i)[k].doc);
      EXPECT_FLOAT_EQ(two_day.Row(i)[k].probability,
                      still_two_day.Row(i)[k].probability);
    }
  }
}

TEST(WindowedCountsTest, DailySumMatchesOneShot) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  DependencyConfig config;
  const auto days = CountDailyDependencies(w.clean(), config);
  WindowedCounts window(w.corpus().size());
  for (const auto& d : days) window.Add(d);
  const auto summed = window.BuildMatrix(config);
  const auto one_shot =
      EstimateDependencies(w.clean(), w.corpus().size(), config);
  EXPECT_EQ(summed.NumEntries(), one_shot.NumEntries());
}

TEST(DependencyTest, ProbabilitiesAreValid) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  const auto p = EstimateDependencies(w.clean(), w.corpus().size(),
                                      DependencyConfig{});
  EXPECT_GT(p.NumEntries(), 0u);
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : p.Row(i)) {
      EXPECT_GT(e.probability, 0.0f);
      EXPECT_LE(e.probability, 1.0f);
      EXPECT_NE(e.doc, i);
      EXPECT_LT(e.doc, p.num_docs());
    }
  }
}

}  // namespace
}  // namespace sds::spec

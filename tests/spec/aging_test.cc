#include "spec/aging.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/workload.h"

namespace sds::spec {
namespace {

DayCounts MakeDay(
    std::vector<std::tuple<trace::DocumentId, trace::DocumentId, uint32_t>>
        pairs,
    std::vector<std::pair<trace::DocumentId, uint32_t>> occurrences) {
  DayCounts day;
  for (const auto& [i, j, n] : pairs) {
    day.pair_counts.push_back({PairKey(i, j), n});
  }
  for (const auto& [doc, n] : occurrences) day.occurrences.push_back({doc, n});
  day.Normalize();
  return day;
}

DependencyConfig Loose() {
  DependencyConfig c;
  c.min_probability = 0.0;
  c.min_support = 1;
  return c;
}

TEST(DecayedCountsTest, SingleDayMatchesWindow) {
  const auto day = MakeDay({{0, 1, 5}}, {{0, 10}, {1, 5}});
  DecayedCounts decayed(2, 0.9);
  decayed.AdvanceDay(day);
  const auto p = decayed.BuildMatrix(Loose());
  EXPECT_NEAR(p.Get(0, 1), 0.5, 1e-9);
}

TEST(DecayedCountsTest, DecayOneIsCumulative) {
  const auto day = MakeDay({{0, 1, 2}}, {{0, 4}});
  DecayedCounts decayed(2, 1.0);
  decayed.AdvanceDay(day);
  decayed.AdvanceDay(day);
  const auto p = decayed.BuildMatrix(Loose());
  EXPECT_NEAR(p.Get(0, 1), 0.5, 1e-9);  // 4 / 8
}

TEST(DecayedCountsTest, OldObservationsFadeOut) {
  DecayedCounts decayed(3, 0.5);
  // Day 0: strong 0 -> 1 dependency.
  decayed.AdvanceDay(MakeDay({{0, 1, 8}}, {{0, 8}}));
  // Days 1..n: the dependency flips to 0 -> 2.
  for (int d = 0; d < 6; ++d) {
    decayed.AdvanceDay(MakeDay({{0, 2, 8}}, {{0, 8}}));
  }
  const auto p = decayed.BuildMatrix(Loose());
  EXPECT_GT(p.Get(0, 2), 0.8);
  EXPECT_LT(p.Get(0, 1), 0.1);
}

TEST(DecayedCountsTest, PruningBoundsState) {
  DecayedCounts decayed(100, 0.5);
  DayCounts big;
  for (trace::DocumentId j = 1; j < 100; ++j) {
    big.pair_counts.push_back({PairKey(0, j), 1});
  }
  big.occurrences.push_back({0, 99});
  big.Normalize();
  decayed.AdvanceDay(big);
  const size_t fresh = decayed.NumPairs();
  // After several empty days everything decays below the prune floor.
  for (int d = 0; d < 10; ++d) decayed.AdvanceDay(DayCounts{});
  EXPECT_EQ(decayed.NumPairs(), 0u);
  EXPECT_GT(fresh, 0u);
}

TEST(DecayedCountsTest, WeightedRecency) {
  // 10 old observations of 0->1 against 3 recent of 0->2 with decay 0.5:
  // recency wins after a few days.
  DecayedCounts decayed(3, 0.5);
  decayed.AdvanceDay(MakeDay({{0, 1, 10}}, {{0, 10}}));
  decayed.AdvanceDay(MakeDay({}, {}));
  decayed.AdvanceDay(MakeDay({{0, 2, 3}}, {{0, 3}}));
  const auto p = decayed.BuildMatrix(Loose());
  EXPECT_GT(p.Get(0, 2), p.Get(0, 1));
}

TEST(DecayedCountsTest, ProbabilityCappedAtOne) {
  // Pairs can outlive their occurrence denominator after decay + pruning;
  // the probability must still be <= 1.
  DecayedCounts decayed(2, 0.9);
  decayed.AdvanceDay(MakeDay({{0, 1, 5}}, {{0, 5}}));
  decayed.AdvanceDay(MakeDay({{0, 1, 5}}, {{0, 5}}));
  const auto p = decayed.BuildMatrix(Loose());
  EXPECT_LE(p.Get(0, 1), 1.0);
  EXPECT_GT(p.Get(0, 1), 0.9);
}

TEST(DecayedCountsTest, MinSupportAppliesToAgedCounts) {
  DependencyConfig config = Loose();
  config.min_support = 3;
  DecayedCounts decayed(2, 0.5);
  decayed.AdvanceDay(MakeDay({{0, 1, 4}}, {{0, 4}}));
  EXPECT_GT(decayed.BuildMatrix(config).Get(0, 1), 0.0);
  // Two empty days decay the pair count to 1 < min_support.
  decayed.AdvanceDay(DayCounts{});
  decayed.AdvanceDay(DayCounts{});
  EXPECT_DOUBLE_EQ(decayed.BuildMatrix(config).Get(0, 1), 0.0);
}

TEST(DecayedCountsTest, EndToEndWithSimulatorDeltas) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  DependencyConfig config;
  const auto days = CountDailyDependencies(w.clean(), config);
  DecayedCounts decayed(w.corpus().size(), 0.9);
  for (const auto& d : days) decayed.AdvanceDay(d);
  const auto p = decayed.BuildMatrix(config);
  EXPECT_GT(p.NumEntries(), 0u);
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : p.Row(i)) {
      EXPECT_GT(e.probability, 0.0f);
      EXPECT_LE(e.probability, 1.0f);
    }
  }
}

}  // namespace
}  // namespace sds::spec

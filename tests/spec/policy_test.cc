#include "spec/policy.h"

#include <gtest/gtest.h>

#include "trace/corpus.h"

namespace sds::spec {
namespace {

trace::Corpus MakeCorpus() {
  std::vector<trace::DocumentInfo> docs;
  const uint64_t sizes[] = {1000, 5000, 20000, 100000};
  for (trace::DocumentId id = 0; id < 4; ++id) {
    trace::DocumentInfo d;
    d.id = id;
    d.server = 0;
    d.size_bytes = sizes[id];
    d.path = "/d" + std::to_string(id);
    docs.push_back(d);
  }
  return trace::Corpus(std::move(docs));
}

std::vector<SparseProbMatrix::Entry> Row() {
  return {{0, 0.9f}, {1, 0.6f}, {2, 0.4f}, {3, 0.3f}};
}

TEST(PolicyTest, ThresholdKeepsAboveTp) {
  PolicyConfig config;
  config.threshold = 0.5;
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 0u);
  EXPECT_EQ(out[1].doc, 1u);
}

TEST(PolicyTest, ThresholdOneKeepsOnlyCertain) {
  PolicyConfig config;
  config.threshold = 1.0;
  EXPECT_TRUE(SelectCandidates(Row(), MakeCorpus(), config).empty());
  const std::vector<SparseProbMatrix::Entry> certain = {{2, 1.0f}};
  EXPECT_EQ(SelectCandidates(certain, MakeCorpus(), config).size(), 1u);
}

TEST(PolicyTest, MaxSizeFiltersLargeDocs) {
  PolicyConfig config;
  config.threshold = 0.2;
  config.max_size = 10000;
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  for (const auto& c : out) {
    EXPECT_LE(MakeCorpus().doc(c.doc).size_bytes, 10000u);
  }
  EXPECT_EQ(out.size(), 2u);  // docs 0 and 1
}

TEST(PolicyTest, MaxSizeZeroMeansUnlimited) {
  PolicyConfig config;
  config.threshold = 0.2;
  config.max_size = 0;
  EXPECT_EQ(SelectCandidates(Row(), MakeCorpus(), config).size(), 4u);
}

TEST(PolicyTest, TopKLimitsCount) {
  PolicyConfig config;
  config.kind = PolicyKind::kTopK;
  config.threshold = 0.2;
  config.top_k = 2;
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 0u);
  EXPECT_EQ(out[1].doc, 1u);
}

TEST(PolicyTest, ByteBudgetGreedyFill) {
  PolicyConfig config;
  config.kind = PolicyKind::kByteBudget;
  config.threshold = 0.2;
  config.byte_budget = 7000;
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  // 1000 + 5000 fit; 20000 and 100000 do not.
  ASSERT_EQ(out.size(), 2u);
  uint64_t total = 0;
  for (const auto& c : out) total += MakeCorpus().doc(c.doc).size_bytes;
  EXPECT_LE(total, 7000u);
}

TEST(PolicyTest, ByteBudgetSkipsTooBigButContinues) {
  PolicyConfig config;
  config.kind = PolicyKind::kByteBudget;
  config.threshold = 0.2;
  config.byte_budget = 1500;
  // Doc 0 (1000) fits; doc 1 (5000) doesn't; nothing else under 500 left.
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 0u);
}

TEST(PolicyTest, EmptyRow) {
  PolicyConfig config;
  EXPECT_TRUE(SelectCandidates({}, MakeCorpus(), config).empty());
}

TEST(PolicyTest, OutputSortedByProbability) {
  PolicyConfig config;
  config.threshold = 0.2;
  const auto out = SelectCandidates(Row(), MakeCorpus(), config);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].probability, out[i].probability);
  }
}

}  // namespace
}  // namespace sds::spec

// Differential-testing harness for ClosureMode::kIncremental: under every
// randomized scenario the incrementally maintained P, the lazily cached
// P* rows, and the downstream speculation decisions must be bit-identical
// to a from-scratch batch rebuild. Scenarios are seeded; every assertion
// carries the failing seed so a reported failure reproduces with a
// one-line filter + the printed seed.

#include <deque>
#include <gtest/gtest.h>
#include <sstream>
#include <vector>

#include "core/experiments.h"
#include "core/sweep.h"
#include "core/workload.h"
#include "spec/closure.h"
#include "spec/dependency.h"
#include "spec/simulator.h"
#include "util/rng.h"

namespace sds::spec {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: randomized day-count streams, matrix + closure equivalence
// ---------------------------------------------------------------------------

// How one synthetic day of pair/occurrence observations is skewed.
enum class Scenario {
  kPopularityChurn,   // hot set rotates slowly through the doc space
  kFlashCrowd,        // some days concentrate most mass on one document
  kInsertRetire,      // active doc range grows, then the oldest retire
  kWindowSlide,       // steady stream; the window slide does the churning
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kPopularityChurn:
      return "popularity-churn";
    case Scenario::kFlashCrowd:
      return "flash-crowd";
    case Scenario::kInsertRetire:
      return "insert-retire";
    case Scenario::kWindowSlide:
      return "window-slide";
  }
  return "?";
}

// One synthetic day: raw pair/occurrence observations, Normalize()d like
// CountDailyDependencies output.
DayCounts MakeDay(Scenario scenario, uint32_t day, size_t num_docs,
                  Rng* rng) {
  DayCounts out;
  size_t lo = 0, hi = num_docs;
  trace::DocumentId crowd_doc = 0;
  bool crowd = false;
  switch (scenario) {
    case Scenario::kPopularityChurn:
      // A window of ~1/4 of the doc space that advances a little each day.
      lo = (day * 3) % num_docs;
      hi = std::min(num_docs, lo + num_docs / 4 + 2);
      break;
    case Scenario::kFlashCrowd:
      crowd = day % 5 == 2;  // every fifth day is a crowd day
      crowd_doc = static_cast<trace::DocumentId>(
          rng->NextBounded(num_docs));
      break;
    case Scenario::kInsertRetire:
      // Docs "exist" in a moving band: new ids appear as days pass and
      // the earliest ids stop being referenced entirely.
      lo = std::min<size_t>(num_docs - 2, day / 2);
      hi = std::min(num_docs, lo + num_docs / 3 + 2);
      break;
    case Scenario::kWindowSlide:
      break;
  }
  const size_t span = hi - lo;
  const size_t events = 20 + rng->NextBounded(60);
  for (size_t e = 0; e < events; ++e) {
    trace::DocumentId i =
        static_cast<trace::DocumentId>(lo + rng->NextBounded(span));
    trace::DocumentId j =
        static_cast<trace::DocumentId>(lo + rng->NextBounded(span));
    if (crowd && rng->NextBernoulli(0.7)) i = crowd_doc;
    if (i == j) continue;
    const uint32_t n = 1 + static_cast<uint32_t>(rng->NextBounded(4));
    out.pair_counts.push_back({PairKey(i, j), n});
    // Occurrences at least as large as the pair count keeps p <= 1 on
    // most rows; occasionally skip them so the p = min(1, n/occ) clamp
    // and the occ == 0 pruning both get exercised.
    if (!rng->NextBernoulli(0.05)) {
      out.occurrences.push_back({i, n + static_cast<uint32_t>(
                                         rng->NextBounded(3))});
    }
  }
  // A few occurrence-only docs (dirty rows with no pair support).
  for (size_t e = 0; e < 4; ++e) {
    out.occurrences.push_back(
        {static_cast<trace::DocumentId>(rng->NextBounded(num_docs)), 1});
  }
  out.Normalize();
  return out;
}

void ExpectMatrixEq(const SparseProbMatrix& batch,
                    const SparseProbMatrix& inc, const std::string& ctx) {
  ASSERT_EQ(batch.num_docs(), inc.num_docs()) << ctx;
  ASSERT_EQ(batch.NumEntries(), inc.NumEntries()) << ctx;
  for (trace::DocumentId i = 0; i < batch.num_docs(); ++i) {
    const auto a = batch.Row(i);
    const auto b = inc.Row(i);
    ASSERT_EQ(a.size(), b.size()) << ctx << " row " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k].doc, b[k].doc) << ctx << " row " << i << " entry " << k;
      // Bit-identical, not approximately equal.
      ASSERT_EQ(a[k].probability, b[k].probability)
          << ctx << " row " << i << " entry " << k;
    }
  }
}

void RunScenario(Scenario scenario, uint64_t seed) {
  std::ostringstream ctx_base;
  ctx_base << ScenarioName(scenario) << " seed=" << seed;
  Rng rng(seed);
  const size_t num_docs = 24 + rng.NextBounded(40);
  const uint32_t days = 30;
  const uint32_t history = 6 + static_cast<uint32_t>(rng.NextBounded(6));

  DependencyConfig dep;
  dep.min_support = 1 + static_cast<uint32_t>(rng.NextBounded(3));
  dep.min_probability = 0.02;
  ClosureConfig closure_cfg;
  closure_cfg.min_probability = 0.02;
  closure_cfg.max_depth = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  if (rng.NextBernoulli(0.3)) {
    closure_cfg.semantics = ClosureSemantics::kSumProductCapped;
  }

  WindowedCounts tracked(num_docs);
  tracked.EnableRowTracking();
  DeltaClosure delta(closure_cfg);
  std::deque<DayCounts> window;
  bool first = true;
  ClosureScratch batch_scratch;

  for (uint32_t day = 0; day < days; ++day) {
    const std::string ctx = ctx_base.str() + " day=" + std::to_string(day);
    const DayCounts dc = MakeDay(scenario, day, num_docs, &rng);
    tracked.Add(dc);
    window.push_back(dc);
    if (window.size() > history) {
      tracked.Remove(window.front());
      window.pop_front();
    }

    // Touch some closure rows *before* the update so the invalidation
    // logic has cached rows to keep or drop.
    if (!first) {
      for (size_t s = 0; s < 5; ++s) {
        delta.ClosureRow(
            static_cast<trace::DocumentId>(rng.NextBounded(num_docs)));
      }
    }

    // Incremental update (mirrors the simulator's update-cycle path).
    if (first) {
      tracked.DrainDirtyRows();
      delta.Rebuild(tracked.BuildMatrix(dep));
      first = false;
    } else {
      delta.ApplyDelta(&tracked, dep);
    }

    // Batch reference: a fresh window aggregate, built from scratch.
    WindowedCounts fresh(num_docs);
    for (const DayCounts& d : window) fresh.Add(d);
    const SparseProbMatrix batch = fresh.BuildMatrix(dep);
    ExpectMatrixEq(batch, delta.matrix(), ctx);
    if (::testing::Test::HasFatalFailure()) return;

    // Closure rows: every source, cached or fresh, must match a batch
    // closure computation bit-for-bit.
    for (trace::DocumentId s = 0; s < num_docs; ++s) {
      const auto expect =
          ComputeClosureRow(batch, s, closure_cfg, &batch_scratch);
      const auto got = delta.ClosureRow(s);
      ASSERT_EQ(expect.size(), got.size()) << ctx << " source " << s;
      for (size_t k = 0; k < expect.size(); ++k) {
        ASSERT_EQ(expect[k].doc, got[k].doc)
            << ctx << " source " << s << " entry " << k;
        ASSERT_EQ(expect[k].probability, got[k].probability)
            << ctx << " source " << s << " entry " << k;
      }
    }
  }
  // The whole point: deltas must not degenerate to full rebuilds.
  EXPECT_EQ(delta.stats().full_rebuilds, 1u) << ctx_base.str();
  EXPECT_EQ(delta.stats().delta_cycles, days - 1) << ctx_base.str();
}

TEST(IncrementalEquivalence, PopularityChurn) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunScenario(Scenario::kPopularityChurn, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(IncrementalEquivalence, FlashCrowd) {
  for (uint64_t seed = 101; seed <= 108; ++seed) {
    RunScenario(Scenario::kFlashCrowd, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(IncrementalEquivalence, InsertRetire) {
  for (uint64_t seed = 201; seed <= 208; ++seed) {
    RunScenario(Scenario::kInsertRetire, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(IncrementalEquivalence, WindowSlide) {
  for (uint64_t seed = 301; seed <= 308; ++seed) {
    RunScenario(Scenario::kWindowSlide, seed);
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Layer 2: full simulator runs, batch vs incremental RunTotals
// ---------------------------------------------------------------------------

void ExpectTotalsEq(const RunTotals& a, const RunTotals& b,
                    const std::string& ctx) {
  EXPECT_EQ(a.bytes_sent, b.bytes_sent) << ctx;
  EXPECT_EQ(a.server_requests, b.server_requests) << ctx;
  EXPECT_EQ(a.client_requests, b.client_requests) << ctx;
  EXPECT_EQ(a.total_latency, b.total_latency) << ctx;
  EXPECT_EQ(a.miss_bytes, b.miss_bytes) << ctx;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << ctx;
  EXPECT_EQ(a.speculative_docs_sent, b.speculative_docs_sent) << ctx;
  EXPECT_EQ(a.speculative_bytes, b.speculative_bytes) << ctx;
  EXPECT_EQ(a.speculative_hits, b.speculative_hits) << ctx;
  EXPECT_EQ(a.wasted_speculative_bytes, b.wasted_speculative_bytes) << ctx;
  EXPECT_EQ(a.prefetch_requests, b.prefetch_requests) << ctx;
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests) << ctx;
  EXPECT_EQ(a.retry_attempts, b.retry_attempts) << ctx;
  EXPECT_EQ(a.suppressed_speculative_docs, b.suppressed_speculative_docs)
      << ctx;
}

class IncrementalSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new core::Workload(core::MakeWorkload(core::SmallConfig()));
    sim_ = new SpeculationSimulator(&workload_->corpus(),
                                    &workload_->clean());
  }
  static void TearDownTestSuite() {
    delete sim_;
    delete workload_;
    sim_ = nullptr;
    workload_ = nullptr;
  }

  static void ExpectModesMatch(SpeculationConfig config,
                               const std::string& ctx) {
    config.closure_mode = ClosureMode::kBatch;
    const RunTotals batch = sim_->Run(config);
    config.closure_mode = ClosureMode::kIncremental;
    const RunTotals inc = sim_->Run(config);
    ExpectTotalsEq(batch, inc, ctx);
  }

  static core::Workload* workload_;
  static SpeculationSimulator* sim_;
};

core::Workload* IncrementalSimTest::workload_ = nullptr;
SpeculationSimulator* IncrementalSimTest::sim_ = nullptr;

TEST_F(IncrementalSimTest, SpeculativePushDailyCycle) {
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  ExpectModesMatch(config, "push D=1");
}

TEST_F(IncrementalSimTest, SpeculativePushSlidingWindow) {
  // Short history forces days to leave the window mid-run (removal path).
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  config.history_days = 5;
  ExpectModesMatch(config, "push D'=5");
}

TEST_F(IncrementalSimTest, WeeklyUpdateCycle) {
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  config.update_cycle_days = 7;
  ExpectModesMatch(config, "push D=7");
}

TEST_F(IncrementalSimTest, ServerHints) {
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  config.mode = ServiceMode::kServerHints;
  ExpectModesMatch(config, "hints");
}

TEST_F(IncrementalSimTest, RawPWithoutClosure) {
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  config.use_closure = false;
  ExpectModesMatch(config, "raw-P");
}

TEST_F(IncrementalSimTest, DecayEstimatorFallsBackToBatch) {
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.25;
  config.estimator = SpeculationConfig::EstimatorKind::kExponentialDecay;
  ExpectModesMatch(config, "decay");
}

// ---------------------------------------------------------------------------
// Layer 3: sweep-level equivalence across 1 / 2 / hardware workers
// ---------------------------------------------------------------------------

TEST_F(IncrementalSimTest, SweepWorkersAndModesAgree) {
  const std::vector<double> tps = {0.5, 0.25};
  core::SweepOptions serial;
  serial.workers = 1;
  const core::Fig5Result batch =
      core::RunFig5(*workload_, tps, serial, ClosureMode::kBatch);
  for (const uint32_t workers : {1u, 2u, 0u}) {  // 0 = hardware
    core::SweepOptions options;
    options.workers = workers;
    const core::Fig5Result inc =
        core::RunFig5(*workload_, tps, options, ClosureMode::kIncremental);
    ASSERT_EQ(batch.points.size(), inc.points.size());
    for (size_t k = 0; k < batch.points.size(); ++k) {
      const std::string ctx = "workers=" + std::to_string(workers) +
                              " tp=" + std::to_string(tps[k]);
      EXPECT_EQ(batch.points[k].tp, inc.points[k].tp) << ctx;
      ExpectTotalsEq(batch.points[k].metrics.with_speculation,
                     inc.points[k].metrics.with_speculation, ctx);
      ExpectTotalsEq(batch.points[k].metrics.without_speculation,
                     inc.points[k].metrics.without_speculation, ctx);
      EXPECT_EQ(batch.points[k].metrics.bandwidth_ratio,
                inc.points[k].metrics.bandwidth_ratio)
          << ctx;
      EXPECT_EQ(batch.points[k].metrics.server_load_ratio,
                inc.points[k].metrics.server_load_ratio)
          << ctx;
      EXPECT_EQ(batch.points[k].metrics.service_time_ratio,
                inc.points[k].metrics.service_time_ratio)
          << ctx;
      EXPECT_EQ(batch.points[k].metrics.miss_rate_ratio,
                inc.points[k].metrics.miss_rate_ratio)
          << ctx;
    }
  }
}

}  // namespace
}  // namespace sds::spec

#include "spec/client_cache.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace sds::spec {
namespace {

TEST(ClientCacheTest, BasicInsertContains) {
  ClientCache cache({kInfiniteTime, 0});
  cache.Touch(0.0);
  EXPECT_FALSE(cache.Contains(1));
  cache.Insert(1, 100, false, 0.0);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.num_docs(), 1u);
}

TEST(ClientCacheTest, NoCacheWhenTimeoutZero) {
  ClientCache cache({0.0, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ClientCacheTest, SessionTimeoutPurges) {
  ClientCache cache({60.0, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Touch(30.0);  // same session
  EXPECT_TRUE(cache.Contains(1));
  cache.Touch(120.0);  // gap 90 >= 60: new session
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ClientCacheTest, GapExactlyTimeoutPurges) {
  ClientCache cache({60.0, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Touch(60.0);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(ClientCacheTest, InfiniteTimeoutNeverPurges) {
  ClientCache cache({kInfiniteTime, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Touch(1e9);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(ClientCacheTest, LruEvictionRespectsCapacity) {
  ClientCache cache({kInfiniteTime, 250});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Insert(2, 100, false, 1.0);
  cache.Insert(3, 100, false, 2.0);  // evicts doc 1 (LRU)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_LE(cache.used_bytes(), 250u);
}

TEST(ClientCacheTest, MarkUsedRefreshesLru) {
  ClientCache cache({kInfiniteTime, 250});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Insert(2, 100, false, 1.0);
  cache.MarkUsed(1);                 // 1 becomes most recent
  cache.Insert(3, 100, false, 2.0);  // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(ClientCacheTest, OversizedDocumentNotCached) {
  ClientCache cache({kInfiniteTime, 100});
  cache.Touch(0.0);
  cache.Insert(1, 500, true, 0.0);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.wasted_speculative_bytes(), 500u);
}

TEST(ClientCacheTest, SpeculativeFlagLifecycle) {
  ClientCache cache({kInfiniteTime, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, true, 0.0);
  EXPECT_TRUE(cache.IsUnusedSpeculative(1));
  cache.MarkUsed(1);
  EXPECT_FALSE(cache.IsUnusedSpeculative(1));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(ClientCacheTest, WastedSpeculativeBytesOnPurge) {
  ClientCache cache({60.0, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, true, 0.0);
  cache.Insert(2, 50, true, 1.0);
  cache.MarkUsed(2);   // used: not wasted
  cache.Touch(500.0);  // purge
  EXPECT_EQ(cache.wasted_speculative_bytes(), 100u);
}

TEST(ClientCacheTest, WastedSpeculativeBytesOnEviction) {
  ClientCache cache({kInfiniteTime, 150});
  cache.Touch(0.0);
  cache.Insert(1, 100, true, 0.0);
  cache.Insert(2, 100, false, 1.0);  // evicts 1 unused
  EXPECT_EQ(cache.wasted_speculative_bytes(), 100u);
}

TEST(ClientCacheTest, DuplicateInsertKeepsBytes) {
  ClientCache cache({kInfiniteTime, 0});
  cache.Touch(0.0);
  cache.Insert(1, 100, false, 0.0);
  cache.Insert(1, 100, false, 1.0);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.num_docs(), 1u);
}

TEST(ClientCacheTest, ContentsListsAllDocs) {
  ClientCache cache({kInfiniteTime, 0});
  cache.Touch(0.0);
  cache.Insert(5, 10, false, 0.0);
  cache.Insert(9, 10, false, 0.0);
  auto contents = cache.Contents();
  std::sort(contents.begin(), contents.end());
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], 5u);
  EXPECT_EQ(contents[1], 9u);
}

}  // namespace
}  // namespace sds::spec

#include "spec/queueing.h"

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "spec/simulator.h"

namespace sds::spec {
namespace {

QueueConfig FastServer() {
  QueueConfig config;
  config.service_overhead_s = 1.0;
  config.service_rate_bytes_per_s = 1000.0;
  return config;
}

TEST(QueueTest, EmptyStream) {
  const QueueStats stats = ComputeQueueStats({}, FastServer());
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_wait_s, 0.0);
}

TEST(QueueTest, IdleServerNoWaiting) {
  // Requests far apart: no queueing, response = service time.
  std::vector<ServerEvent> events = {{0.0, 1000.0}, {100.0, 1000.0}};
  const QueueStats stats = ComputeQueueStats(events, FastServer());
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_wait_s, 0.0);
  EXPECT_NEAR(stats.mean_response_s, 2.0, 1e-9);  // 1 s overhead + 1 s xfer
}

TEST(QueueTest, BackToBackRequestsQueue) {
  // Three simultaneous requests, 2 s service each: waits 0, 2, 4.
  std::vector<ServerEvent> events = {{0.0, 1000.0}, {0.0, 1000.0},
                                     {0.0, 1000.0}};
  const QueueStats stats = ComputeQueueStats(events, FastServer());
  EXPECT_NEAR(stats.mean_wait_s, 2.0, 1e-9);
  EXPECT_NEAR(stats.max_queue_depth, 3.0, 1e-9);
}

TEST(QueueTest, UtilizationBounds) {
  std::vector<ServerEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({i * 10.0, 500.0});
  }
  const QueueStats stats = ComputeQueueStats(events, FastServer());
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
  // Service = 1.5 s every 10 s -> utilization ~15%.
  EXPECT_NEAR(stats.utilization, 0.15, 0.02);
}

TEST(QueueTest, UtilizationInvariantUnderTimeOriginShift) {
  // Regression: the span used to be measured from t = 0, so replaying an
  // eval split with large start timestamps diluted utilization toward
  // zero. All stats must be invariant under a constant origin shift.
  std::vector<ServerEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({i * 10.0 + (i % 7) * 0.25, 200.0 + 40.0 * (i % 5)});
  }
  const QueueStats base = ComputeQueueStats(events, FastServer());

  for (const double shift : {3600.0, 30.0 * 86400.0, 2.5e8}) {
    std::vector<ServerEvent> shifted = events;
    for (auto& e : shifted) e.time += shift;
    const QueueStats moved = ComputeQueueStats(shifted, FastServer());
    // Tolerance covers fp rounding at the shifted magnitudes (ulp of
    // 2.5e8 is ~3e-8); the pre-fix dilution was ~0.15, five orders
    // larger.
    EXPECT_NEAR(moved.utilization, base.utilization, 1e-7) << shift;
    EXPECT_NEAR(moved.mean_wait_s, base.mean_wait_s, 1e-7) << shift;
    EXPECT_NEAR(moved.mean_response_s, base.mean_response_s, 1e-7) << shift;
    EXPECT_NEAR(moved.p95_response_s, base.p95_response_s, 1e-7) << shift;
    EXPECT_DOUBLE_EQ(moved.max_queue_depth, base.max_queue_depth) << shift;
  }
}

TEST(QueueTest, LateSingleRequestHasHonestUtilization) {
  // One 2 s request arriving at t = 10^6: the observed window is just its
  // own service time, so the server was 100% busy while observed.
  std::vector<ServerEvent> events = {{1e6, 1000.0}};
  const QueueStats stats = ComputeQueueStats(events, FastServer());
  EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
}

TEST(QueueTest, ZeroSpanStreamClamps) {
  // Degenerate config: zero overhead and zero-byte responses make every
  // completion coincide with the (single) arrival instant.
  QueueConfig instant;
  instant.service_overhead_s = 0.0;
  instant.service_rate_bytes_per_s = 1000.0;
  std::vector<ServerEvent> events = {{5.0, 0.0}, {5.0, 0.0}};
  const QueueStats stats = ComputeQueueStats(events, instant);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_DOUBLE_EQ(stats.utilization, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_wait_s, 0.0);
}

TEST(QueueTest, P95AtLeastMean) {
  std::vector<ServerEvent> events;
  for (int i = 0; i < 50; ++i) events.push_back({i * 0.5, 800.0});
  const QueueStats stats = ComputeQueueStats(events, FastServer());
  EXPECT_GE(stats.p95_response_s, stats.mean_response_s * 0.5);
}

TEST(QueueTest, FasterServerShorterWaits) {
  std::vector<ServerEvent> events;
  for (int i = 0; i < 200; ++i) events.push_back({i * 1.2, 1500.0});
  QueueConfig slow = FastServer();
  QueueConfig fast = FastServer();
  fast.service_rate_bytes_per_s *= 10.0;
  fast.service_overhead_s /= 10.0;
  const QueueStats s = ComputeQueueStats(events, slow);
  const QueueStats f = ComputeQueueStats(events, fast);
  EXPECT_GT(s.mean_wait_s, f.mean_wait_s);
}

TEST(QueueTest, SimulatorEventStreamIsOrderedAndComplete) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  SpeculationSimulator sim(&w.corpus(), &w.clean());
  SpeculationConfig config = core::BaselineSpecConfig();
  config.policy.threshold = 0.3;
  std::vector<ServerEvent> events;
  const RunTotals totals = sim.Run(config, &events);
  EXPECT_EQ(events.size(), totals.server_requests);
  double bytes = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    bytes += events[i].response_bytes;
  }
  EXPECT_NEAR(bytes, totals.bytes_sent, 1e-6);
}

TEST(QueueTest, SpeculationCutsWaitingNearSaturation) {
  const core::Workload w = core::MakeWorkload(core::SmallConfig());
  SpeculationSimulator sim(&w.corpus(), &w.clean());
  SpeculationConfig plain = core::BaselineSpecConfig();
  plain.mode = ServiceMode::kNone;
  SpeculationConfig spec = core::BaselineSpecConfig();
  spec.policy.threshold = 0.25;
  std::vector<ServerEvent> plain_events, spec_events;
  sim.Run(plain, &plain_events);
  sim.Run(spec, &spec_events);
  ASSERT_GT(plain_events.size(), spec_events.size());

  // Pick a service rate that loads the plain server noticeably.
  QueueConfig queue;
  queue.service_overhead_s = 0.2;
  queue.service_rate_bytes_per_s = 50e3;
  const QueueStats p = ComputeQueueStats(plain_events, queue);
  const QueueStats s = ComputeQueueStats(spec_events, queue);
  EXPECT_LE(s.mean_wait_s, p.mean_wait_s + 1e-9);
}

}  // namespace
}  // namespace sds::spec

/// Golden equivalence suite for the flat-layout hot paths: the CSR
/// SparseProbMatrix, the epoch-stamped closure scratch and the
/// open-addressing dependency counters must reproduce the legacy
/// map-based algorithms exactly — same keys, same counts, same entry
/// order, bit-identical probabilities — on a paper-scale workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/workload.h"
#include "spec/closure.h"
#include "spec/dependency.h"

namespace sds::spec {
namespace {

class FlatEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ =
        new core::Workload(core::MakeWorkload(core::PaperScaleConfig()));
    matrix_ = new SparseProbMatrix(EstimateDependencies(
        workload_->clean(), workload_->corpus().size(), DependencyConfig{}));
  }
  static void TearDownTestSuite() {
    delete matrix_;
    matrix_ = nullptr;
    delete workload_;
    workload_ = nullptr;
  }
  static core::Workload* workload_;
  static SparseProbMatrix* matrix_;
};

core::Workload* FlatEquivalenceTest::workload_ = nullptr;
SparseProbMatrix* FlatEquivalenceTest::matrix_ = nullptr;

void SortByProbability(std::vector<SparseProbMatrix::Entry>* out) {
  std::sort(out->begin(), out->end(),
            [](const SparseProbMatrix::Entry& a,
               const SparseProbMatrix::Entry& b) {
              if (a.probability != b.probability)
                return a.probability > b.probability;
              return a.doc < b.doc;
            });
}

/// The pre-refactor max-product closure row: std::priority_queue frontier
/// and an unordered_map of best chain probabilities.
std::vector<SparseProbMatrix::Entry> LegacyMapClosureRow(
    const SparseProbMatrix& p, trace::DocumentId source,
    const ClosureConfig& config) {
  struct Item {
    double prob;
    uint32_t depth;
    trace::DocumentId doc;
    bool operator<(const Item& other) const { return prob < other.prob; }
  };
  std::priority_queue<Item> queue;
  std::unordered_map<trace::DocumentId, double> best;
  queue.push({1.0, 0, source});
  best[source] = 1.0;
  uint32_t expansions = 0;
  std::vector<SparseProbMatrix::Entry> out;
  while (!queue.empty() && expansions < config.max_expansions) {
    const Item item = queue.top();
    queue.pop();
    if (item.prob < best[item.doc]) continue;
    ++expansions;
    if (item.doc != source) {
      out.push_back({item.doc, static_cast<float>(item.prob)});
    }
    if (item.depth >= config.max_depth) continue;
    if (item.doc >= p.num_docs()) continue;
    for (const auto& e : p.Row(item.doc)) {
      const double cand = item.prob * e.probability;
      if (cand < config.min_probability) break;
      auto [it, inserted] = best.emplace(e.doc, cand);
      if (!inserted) {
        if (cand <= it->second) continue;
        it->second = cand;
      }
      queue.push({cand, item.depth + 1, e.doc});
    }
  }
  SortByProbability(&out);
  return out;
}

TEST_F(FlatEquivalenceTest, ClosureRowsMatchLegacyMapExactly) {
  const SparseProbMatrix& p = *matrix_;
  ASSERT_GT(p.NumEntries(), 0u);
  const ClosureConfig config;
  ClosureScratch scratch;
  size_t nonempty = 0;
  for (trace::DocumentId doc = 0; doc < p.num_docs(); ++doc) {
    const auto flat = ComputeClosureRow(p, doc, config, &scratch);
    const auto legacy = LegacyMapClosureRow(p, doc, config);
    ASSERT_EQ(flat.size(), legacy.size()) << "row " << doc;
    for (size_t k = 0; k < flat.size(); ++k) {
      ASSERT_EQ(flat[k].doc, legacy[k].doc) << "row " << doc << " entry " << k;
      // Bit-identical: both run the same arithmetic in the same order.
      ASSERT_EQ(flat[k].probability, legacy[k].probability)
          << "row " << doc << " entry " << k;
    }
    if (!flat.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0u) << "degenerate corpus: no closure rows to compare";
}

TEST_F(FlatEquivalenceTest, DailyPairCountsMatchLegacyMapExactly) {
  const DependencyConfig config;
  // Reference aggregation over the identical scan, into ordered maps
  // (sorted by key by construction).
  struct DayMaps {
    std::map<uint64_t, uint32_t> pairs;
    std::map<trace::DocumentId, uint32_t> occurrences;
  };
  std::vector<DayMaps> reference;
  ScanDependencies(
      workload_->clean(), config, 0.0, kInfiniteTime,
      [&](uint32_t day, trace::DocumentId doc) {
        if (day >= reference.size()) reference.resize(day + 1);
        ++reference[day].occurrences[doc];
      },
      [&](uint32_t day, trace::DocumentId i, trace::DocumentId j) {
        if (day >= reference.size()) reference.resize(day + 1);
        ++reference[day].pairs[PairKey(i, j)];
      });

  std::vector<DayCounts> flat =
      CountDailyDependencies(workload_->clean(), config);
  ASSERT_GE(flat.size(), reference.size());
  size_t total_pairs = 0;
  for (uint32_t d = 0; d < flat.size(); ++d) {
    // Flat runs come out in first-seen order; Normalize sorts by key so
    // they line up with the ordered reference maps.
    flat[d].Normalize();
    const DayMaps empty;
    const DayMaps& ref = d < reference.size() ? reference[d] : empty;
    ASSERT_EQ(flat[d].pair_counts.size(), ref.pairs.size()) << "day " << d;
    size_t k = 0;
    for (const auto& [key, n] : ref.pairs) {
      EXPECT_EQ(flat[d].pair_counts[k].first, key) << "day " << d;
      EXPECT_EQ(flat[d].pair_counts[k].second, n) << "day " << d;
      ++k;
    }
    ASSERT_EQ(flat[d].occurrences.size(), ref.occurrences.size())
        << "day " << d;
    k = 0;
    for (const auto& [doc, n] : ref.occurrences) {
      EXPECT_EQ(flat[d].occurrences[k].first, doc) << "day " << d;
      EXPECT_EQ(flat[d].occurrences[k].second, n) << "day " << d;
      ++k;
    }
    total_pairs += flat[d].pair_counts.size();
  }
  EXPECT_GT(total_pairs, 0u) << "degenerate trace: no pairs counted";
}

TEST_F(FlatEquivalenceTest, EstimatedMatrixMatchesLegacyMapPipeline) {
  const DependencyConfig config;
  // Reference pipeline: hash-map pair counts, dense occurrences, same
  // pruning thresholds, rows assembled per source and sorted with the
  // library's (probability desc, doc asc) comparator.
  std::unordered_map<uint64_t, int64_t> pair_counts;
  std::vector<int64_t> occurrences(workload_->corpus().size(), 0);
  ScanDependencies(
      workload_->clean(), config, 0.0, kInfiniteTime,
      [&](uint32_t, trace::DocumentId doc) {
        if (doc >= occurrences.size()) occurrences.resize(doc + 1, 0);
        ++occurrences[doc];
      },
      [&](uint32_t, trace::DocumentId i, trace::DocumentId j) {
        ++pair_counts[PairKey(i, j)];
      });
  std::vector<std::vector<SparseProbMatrix::Entry>> rows(
      workload_->corpus().size());
  size_t reference_entries = 0;
  for (const auto& [key, n] : pair_counts) {
    if (n < config.min_support) continue;
    const trace::DocumentId i = static_cast<trace::DocumentId>(key >> 32);
    const trace::DocumentId j =
        static_cast<trace::DocumentId>(key & 0xffffffffu);
    if (i >= occurrences.size() || occurrences[i] == 0) continue;
    const double p = std::min(
        1.0, static_cast<double>(n) / static_cast<double>(occurrences[i]));
    if (p < config.min_probability) continue;
    rows[i].push_back({j, static_cast<float>(p)});
    ++reference_entries;
  }
  for (auto& row : rows) SortByProbability(&row);

  const SparseProbMatrix& flat = *matrix_;
  EXPECT_EQ(flat.NumEntries(), reference_entries);
  for (trace::DocumentId i = 0; i < flat.num_docs(); ++i) {
    const auto view = flat.Row(i);
    ASSERT_EQ(view.size(), rows[i].size()) << "row " << i;
    for (size_t k = 0; k < view.size(); ++k) {
      ASSERT_EQ(view[k].doc, rows[i][k].doc) << "row " << i << " entry " << k;
      ASSERT_EQ(view[k].probability, rows[i][k].probability)
          << "row " << i << " entry " << k;
    }
  }
  EXPECT_GT(reference_entries, 0u) << "degenerate trace: empty matrix";
}

TEST_F(FlatEquivalenceTest, CsrMatrixIsInsertOrderIndependent) {
  // The CSR finalisation (counting sort + total-order row sort) must
  // produce the same matrix no matter the order entries were staged in.
  const SparseProbMatrix& flat = *matrix_;
  SparseProbMatrix reversed(flat.num_docs());
  std::vector<std::pair<trace::DocumentId, SparseProbMatrix::Entry>> all;
  for (trace::DocumentId i = 0; i < flat.num_docs(); ++i) {
    for (const auto& e : flat.Row(i)) all.push_back({i, e});
  }
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    reversed.Add(it->first, it->second.doc, it->second.probability);
  }
  reversed.SortRows();
  ASSERT_EQ(reversed.NumEntries(), flat.NumEntries());
  for (trace::DocumentId i = 0; i < flat.num_docs(); ++i) {
    const auto a = flat.Row(i);
    const auto b = reversed.Row(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k].doc, b[k].doc) << "row " << i;
      ASSERT_EQ(a[k].probability, b[k].probability) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace sds::spec

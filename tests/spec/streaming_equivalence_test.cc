// Differential tests for the streaming spec pipeline: the
// DailyDependencyAccumulator, StreamingSpeculationSimulator and
// QueueSimulator must be bit-identical to their batch counterparts on the
// same request stream — not approximately equal; every RunTotals field,
// every server event and every per-day count run must match exactly,
// because the streaming classes are the batch loop bodies re-fed from
// cursors, not re-implementations.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/workload.h"
#include "spec/dependency.h"
#include "spec/metrics.h"
#include "spec/queueing.h"
#include "spec/simulator.h"
#include "trace/cursor.h"

namespace sds::spec {
namespace {

// One shared small workload (batch mode, so both the materialized trace
// and cursors over the same stream are available side by side).
const core::Workload& SharedWorkload() {
  static const core::Workload* workload =
      new core::Workload(core::MakeWorkload(core::SmallConfig()));
  return *workload;
}

// ---------------------------------------------------------------------------
// Dependency counting
// ---------------------------------------------------------------------------

// Batch emits runs in deterministic first-seen order; the accumulator
// emits them sorted by key. Consumers are order-insensitive, so the
// comparison normalizes the batch side.
std::vector<DayCounts> NormalizedBatchCounts(const DependencyConfig& config) {
  std::vector<DayCounts> batch =
      CountDailyDependencies(SharedWorkload().clean(), config);
  for (DayCounts& day : batch) day.Normalize();
  return batch;
}

void ExpectDaysEq(const std::vector<DayCounts>& batch,
                  const std::vector<DayCounts>& stream) {
  ASSERT_EQ(batch.size(), stream.size());
  for (size_t d = 0; d < batch.size(); ++d) {
    EXPECT_EQ(batch[d].pair_counts, stream[d].pair_counts) << "day " << d;
    EXPECT_EQ(batch[d].occurrences, stream[d].occurrences) << "day " << d;
  }
}

TEST(StreamingDependencyTest, MatchesBatchOnDefaultConfig) {
  const DependencyConfig config;
  const auto cursor = SharedWorkload().NewCleanCursor();
  ExpectDaysEq(NormalizedBatchCounts(config),
               CountDailyDependenciesStream(cursor.get(), config));
}

TEST(StreamingDependencyTest, MatchesBatchOnWideWindow) {
  DependencyConfig config;
  config.window = 60.0;
  config.stride_timeout = 300.0;
  const auto cursor = SharedWorkload().NewCleanCursor();
  ExpectDaysEq(NormalizedBatchCounts(config),
               CountDailyDependenciesStream(cursor.get(), config));
}

TEST(StreamingDependencyTest, MatchesBatchOnTightStride) {
  DependencyConfig config;
  config.window = 30.0;
  config.stride_timeout = 2.0;  // stride breaks dominate
  const auto cursor = SharedWorkload().NewCleanCursor();
  ExpectDaysEq(NormalizedBatchCounts(config),
               CountDailyDependenciesStream(cursor.get(), config));
}

// The pump-ahead pattern the streaming simulator uses: query each day the
// moment DayFinal flips, drop history behind the query point, and still
// read batch-identical counts. This pins both the day-finality rule and
// DropBefore leaving live days untouched.
TEST(StreamingDependencyTest, IncrementalFinalityAndDropBefore) {
  const DependencyConfig config;
  const auto batch = NormalizedBatchCounts(config);

  DailyDependencyAccumulator acc(config,
                                 SharedWorkload().clean().num_clients);
  const auto cursor = SharedWorkload().NewCleanCursor();
  uint32_t next_day = 0;  // first day not yet verified
  const auto drain_final_days = [&] {
    while (next_day < batch.size() && acc.DayFinal(next_day)) {
      const DayCounts* counts = acc.Counts(next_day);
      ASSERT_NE(counts, nullptr);
      EXPECT_EQ(batch[next_day].pair_counts, counts->pair_counts)
          << "day " << next_day;
      EXPECT_EQ(batch[next_day].occurrences, counts->occurrences)
          << "day " << next_day;
      ++next_day;
      if (next_day > 2) acc.DropBefore(next_day - 2);
    }
  };
  for (auto chunk = cursor->NextChunk(); !chunk.empty();
       chunk = cursor->NextChunk()) {
    for (const auto& r : chunk) acc.OnRequest(r);
    drain_final_days();
  }
  acc.FinishStream();
  drain_final_days();
  EXPECT_EQ(next_day, batch.size());
}

TEST(StreamingDependencyTest, EmptyStream) {
  const DependencyConfig config;
  trace::Trace empty;
  empty.num_clients = 0;
  empty.num_servers = 1;
  trace::VectorCursor cursor(&empty);
  const auto days = CountDailyDependenciesStream(&cursor, config);
  ASSERT_EQ(days.size(), 1u);  // matches batch: one empty day
  EXPECT_TRUE(days[0].pair_counts.empty());
  EXPECT_TRUE(days[0].occurrences.empty());
}

// ---------------------------------------------------------------------------
// Speculation replay
// ---------------------------------------------------------------------------

void ExpectTotalsEq(const RunTotals& a, const RunTotals& b) {
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.client_requests, b.client_requests);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.miss_bytes, b.miss_bytes);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.speculative_docs_sent, b.speculative_docs_sent);
  EXPECT_EQ(a.speculative_bytes, b.speculative_bytes);
  EXPECT_EQ(a.speculative_hits, b.speculative_hits);
  EXPECT_EQ(a.wasted_speculative_bytes, b.wasted_speculative_bytes);
  EXPECT_EQ(a.prefetch_requests, b.prefetch_requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.demand_server_responses, b.demand_server_responses);
  EXPECT_EQ(a.demand_bytes_sent, b.demand_bytes_sent);
  EXPECT_EQ(a.wasted_speculative_docs, b.wasted_speculative_docs);
  EXPECT_EQ(a.unused_resident_speculative_docs,
            b.unused_resident_speculative_docs);
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_EQ(a.brownout_responses, b.brownout_responses);
  EXPECT_EQ(a.suppressed_speculative_docs, b.suppressed_speculative_docs);
  EXPECT_EQ(a.emergent_brownouts, b.emergent_brownouts);
  EXPECT_EQ(a.breaker_open_transitions, b.breaker_open_transitions);
  EXPECT_EQ(a.retries_suppressed_by_budget, b.retries_suppressed_by_budget);
  EXPECT_EQ(a.shed_speculative_docs, b.shed_speculative_docs);
  EXPECT_EQ(a.breaker_fast_fails, b.breaker_fast_fails);
}

// Runs `config` through both paths and requires bit-identical totals and
// server-event streams.
void ExpectRunEquivalence(const SpeculationConfig& config) {
  const core::Workload& w = SharedWorkload();
  SpeculationSimulator batch(&w.corpus(), &w.clean());
  std::vector<ServerEvent> batch_events;
  const RunTotals batch_totals = batch.Run(config, &batch_events);

  const auto replay = w.NewCleanCursor();
  const auto deps = w.NewCleanCursor();
  StreamingSpeculationSimulator stream(&w.corpus(), replay.get(),
                                       deps.get());
  std::vector<ServerEvent> stream_events;
  const RunTotals stream_totals = stream.Run(config, &stream_events);

  ExpectTotalsEq(batch_totals, stream_totals);
  ASSERT_EQ(batch_events.size(), stream_events.size());
  for (size_t i = 0; i < batch_events.size(); ++i) {
    EXPECT_EQ(batch_events[i].time, stream_events[i].time) << "event " << i;
    EXPECT_EQ(batch_events[i].response_bytes,
              stream_events[i].response_bytes)
        << "event " << i;
  }
}

SpeculationConfig SmallHistoryBase() {
  SpeculationConfig config;
  // Short history + multi-day cycle stresses the day roll, the window
  // expiry path and the accumulator's DropBefore floor.
  config.history_days = 3;
  config.update_cycle_days = 2;
  return config;
}

TEST(StreamingSimulatorTest, NoneModeMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kNone;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, NoneModeNeedsNoDepsCursor) {
  // The deps cursor may be null when no model is ever built (fig5 runs the
  // baseline this way before the sweep).
  const core::Workload& w = SharedWorkload();
  SpeculationConfig config;
  config.mode = ServiceMode::kNone;
  SpeculationSimulator batch(&w.corpus(), &w.clean());
  const auto replay = w.NewCleanCursor();
  StreamingSpeculationSimulator stream(&w.corpus(), replay.get(), nullptr);
  ExpectTotalsEq(batch.Run(config), stream.Run(config));
}

TEST(StreamingSimulatorTest, PushModeMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, PushWithoutClosureMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;
  config.use_closure = false;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, IncrementalClosureMatchesBatch) {
  SpeculationConfig config = SmallHistoryBase();
  config.mode = ServiceMode::kSpeculativePush;
  config.closure_mode = ClosureMode::kIncremental;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, ExponentialDecayMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;
  config.estimator = SpeculationConfig::EstimatorKind::kExponentialDecay;
  config.decay_per_day = 0.9;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, ClientPrefetchMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kClientPrefetch;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, HybridMatchesBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kHybrid;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, CooperativeClientsMatchBatch) {
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;
  config.cooperative_clients = true;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, ShortHistoryMultiDayCycleMatchesBatch) {
  SpeculationConfig config = SmallHistoryBase();
  config.mode = ServiceMode::kSpeculativePush;
  ExpectRunEquivalence(config);
}

TEST(StreamingSimulatorTest, EvaluateMatchesBatchEvaluate) {
  const core::Workload& w = SharedWorkload();
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;

  SpeculationSimulator batch(&w.corpus(), &w.clean());
  const SpeculationMetrics bm = batch.Evaluate(config);

  const auto replay = w.NewCleanCursor();
  const auto deps = w.NewCleanCursor();
  StreamingSpeculationSimulator stream(&w.corpus(), replay.get(),
                                       deps.get());
  const SpeculationMetrics sm = stream.Evaluate(config);

  EXPECT_EQ(bm.bandwidth_ratio, sm.bandwidth_ratio);
  EXPECT_EQ(bm.server_load_ratio, sm.server_load_ratio);
  EXPECT_EQ(bm.service_time_ratio, sm.service_time_ratio);
  EXPECT_EQ(bm.miss_rate_ratio, sm.miss_rate_ratio);
  EXPECT_EQ(bm.extra_traffic, sm.extra_traffic);
  ExpectTotalsEq(bm.with_speculation, sm.with_speculation);
  ExpectTotalsEq(bm.without_speculation, sm.without_speculation);
}

// ---------------------------------------------------------------------------
// Queue statistics
// ---------------------------------------------------------------------------

TEST(StreamingQueueTest, PushFinishMatchesComputeQueueStats) {
  const core::Workload& w = SharedWorkload();
  SpeculationSimulator sim(&w.corpus(), &w.clean());
  SpeculationConfig config;
  config.mode = ServiceMode::kSpeculativePush;
  std::vector<ServerEvent> events;
  sim.Run(config, &events);
  ASSERT_FALSE(events.empty());

  QueueConfig qc;
  qc.service_overhead_s = 0.05;
  qc.service_rate_bytes_per_s = 1.5e6;
  const QueueStats batch = ComputeQueueStats(events, qc);

  QueueSimulator queue(qc);
  for (const ServerEvent& e : events) queue.Push(e);
  const QueueStats stream = queue.Finish();

  EXPECT_EQ(batch.requests, stream.requests);
  EXPECT_EQ(batch.utilization, stream.utilization);
  EXPECT_EQ(batch.mean_wait_s, stream.mean_wait_s);
  EXPECT_EQ(batch.mean_response_s, stream.mean_response_s);
  EXPECT_EQ(batch.p95_response_s, stream.p95_response_s);
  EXPECT_EQ(batch.max_queue_depth, stream.max_queue_depth);
}

TEST(StreamingQueueTest, EmptyFinishMatchesBatchEmpty) {
  QueueConfig qc;
  const QueueStats batch = ComputeQueueStats({}, qc);
  QueueSimulator queue(qc);
  const QueueStats stream = queue.Finish();
  EXPECT_EQ(batch.requests, stream.requests);
  EXPECT_EQ(batch.utilization, stream.utilization);
}

}  // namespace
}  // namespace sds::spec

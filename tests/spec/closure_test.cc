#include "spec/closure.h"

#include <gtest/gtest.h>

namespace sds::spec {
namespace {

SparseProbMatrix ChainMatrix() {
  // 0 -> 1 (0.8), 1 -> 2 (0.5), 2 -> 3 (0.5), plus 0 -> 2 direct (0.1).
  SparseProbMatrix p(4);
  p.Add(0, 1, 0.8);
  p.Add(1, 2, 0.5);
  p.Add(2, 3, 0.5);
  p.Add(0, 2, 0.1);
  p.SortRows();
  return p;
}

ClosureConfig Config(double min_prob = 0.01) {
  ClosureConfig c;
  c.min_probability = min_prob;
  return c;
}

TEST(ClosureTest, MaxProductPicksBestChain) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config());
  // p*(0,1) = 0.8; p*(0,2) = max(0.1, 0.8*0.5) = 0.4; p*(0,3) = 0.4*0.5.
  double p01 = 0.0, p02 = 0.0, p03 = 0.0;
  for (const auto& e : row) {
    if (e.doc == 1) p01 = e.probability;
    if (e.doc == 2) p02 = e.probability;
    if (e.doc == 3) p03 = e.probability;
  }
  EXPECT_NEAR(p01, 0.8, 1e-6);
  EXPECT_NEAR(p02, 0.4, 1e-6);
  EXPECT_NEAR(p03, 0.2, 1e-6);
}

TEST(ClosureTest, ClosureDominatesDirectEdges) {
  const auto p = ChainMatrix();
  const auto closure = ComputeClosure(p, Config());
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : p.Row(i)) {
      EXPECT_GE(closure.Get(i, e.doc) + 1e-6, e.probability);
    }
  }
}

TEST(ClosureTest, MinProbabilityPrunesChains) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config(0.3));
  for (const auto& e : row) {
    EXPECT_GE(e.probability, 0.3f);
    EXPECT_NE(e.doc, 3u);  // 0.2 pruned
  }
}

TEST(ClosureTest, MaxDepthLimitsChainLength) {
  ClosureConfig config = Config();
  config.max_depth = 1;
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, config);
  // Depth 1: only direct successors.
  for (const auto& e : row) {
    EXPECT_TRUE(e.doc == 1 || e.doc == 2);
    if (e.doc == 2) {
      EXPECT_NEAR(e.probability, 0.1, 1e-6);
    }
  }
}

TEST(ClosureTest, CycleTerminates) {
  SparseProbMatrix p(2);
  p.Add(0, 1, 0.9);
  p.Add(1, 0, 0.9);
  p.SortRows();
  const auto row = ComputeClosureRow(p, 0, Config());
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].doc, 1u);
  EXPECT_NEAR(row[0].probability, 0.9, 1e-6);
}

TEST(ClosureTest, SourceNeverInOwnRow) {
  const auto p = ChainMatrix();
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : ComputeClosureRow(p, i, Config())) {
      EXPECT_NE(e.doc, i);
    }
  }
}

TEST(ClosureTest, RowsSortedDescending) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config());
  for (size_t i = 1; i < row.size(); ++i) {
    EXPECT_GE(row[i - 1].probability, row[i].probability);
  }
}

TEST(ClosureTest, SumProductAddsParallelPaths) {
  // Two disjoint 0 -> 2 paths of probability 0.3 each: max-product gives
  // 0.3, sum-product gives 0.51 (1 - (1-0.3)^2 would be noisy-or; plain
  // sum gives 0.6 capped... our sum-product literally adds: 0.3 + 0.3).
  SparseProbMatrix p(4);
  p.Add(0, 1, 0.6);
  p.Add(1, 3, 0.5);
  p.Add(0, 2, 0.6);
  p.Add(2, 3, 0.5);
  p.SortRows();
  ClosureConfig max_config = Config();
  const auto max_row = ComputeClosureRow(p, 0, max_config);
  ClosureConfig sum_config = Config();
  sum_config.semantics = ClosureSemantics::kSumProductCapped;
  const auto sum_row = ComputeClosureRow(p, 0, sum_config);
  double max_p3 = 0.0, sum_p3 = 0.0;
  for (const auto& e : max_row) {
    if (e.doc == 3) max_p3 = e.probability;
  }
  for (const auto& e : sum_row) {
    if (e.doc == 3) sum_p3 = e.probability;
  }
  EXPECT_NEAR(max_p3, 0.3, 1e-6);
  EXPECT_NEAR(sum_p3, 0.6, 1e-6);
}

TEST(ClosureTest, SumProductCapsAtOne) {
  SparseProbMatrix p(3);
  p.Add(0, 1, 1.0);
  p.Add(1, 2, 1.0);
  p.Add(0, 2, 1.0);
  p.SortRows();
  ClosureConfig config = Config();
  config.semantics = ClosureSemantics::kSumProductCapped;
  for (const auto& e : ComputeClosureRow(p, 0, config)) {
    EXPECT_LE(e.probability, 1.0f);
  }
}

TEST(ClosureCacheTest, CachesAndResets) {
  const auto p = ChainMatrix();
  ClosureCache cache(&p, Config());
  const auto& row1 = cache.Row(0);
  EXPECT_FALSE(row1.empty());
  EXPECT_EQ(cache.CachedRows(), 1u);
  cache.Row(0);
  EXPECT_EQ(cache.CachedRows(), 1u);  // cached, not recomputed

  SparseProbMatrix empty(4);
  cache.Reset(&empty);
  EXPECT_EQ(cache.CachedRows(), 0u);
  EXPECT_TRUE(cache.Row(0).empty());
}

TEST(ClosureTest, EmptyMatrix) {
  SparseProbMatrix p(5);
  const auto closure = ComputeClosure(p, Config());
  EXPECT_EQ(closure.NumEntries(), 0u);
}

TEST(ClosureTest, FullClosureMatchesPerRow) {
  const auto p = ChainMatrix();
  const auto closure = ComputeClosure(p, Config());
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    const auto row = ComputeClosureRow(p, i, Config());
    ASSERT_EQ(closure.Row(i).size(), row.size());
    for (size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(closure.Row(i)[k].doc, row[k].doc);
      EXPECT_FLOAT_EQ(closure.Row(i)[k].probability, row[k].probability);
    }
  }
}

// ---------------------------------------------------------------------------
// DeltaClosure adversarial edge cases
// ---------------------------------------------------------------------------

DayCounts MakeDayCounts(
    const std::vector<std::tuple<trace::DocumentId, trace::DocumentId,
                                 uint32_t>>& pairs,
    const std::vector<std::pair<trace::DocumentId, uint32_t>>& occs) {
  DayCounts day;
  for (const auto& [i, j, n] : pairs) {
    day.pair_counts.push_back({PairKey(i, j), n});
  }
  for (const auto& [doc, n] : occs) day.occurrences.push_back({doc, n});
  day.Normalize();
  return day;
}

DependencyConfig DepConfig() {
  DependencyConfig dep;
  dep.min_support = 1;
  dep.min_probability = 0.02;
  return dep;
}

void ExpectSameAsBatch(const DeltaClosure& delta,
                       const WindowedCounts& counts,
                       const DependencyConfig& dep,
                       const ClosureConfig& closure_cfg) {
  const SparseProbMatrix batch = counts.BuildMatrix(dep);
  ASSERT_EQ(batch.num_docs(), delta.matrix().num_docs());
  for (trace::DocumentId i = 0; i < batch.num_docs(); ++i) {
    const auto a = batch.Row(i);
    const auto b = delta.matrix().Row(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].doc, b[k].doc) << "row " << i;
      EXPECT_EQ(a[k].probability, b[k].probability) << "row " << i;
    }
  }
}

TEST(DeltaClosureTest, EmptyDeltaCycleKeepsEveryCachedRow) {
  WindowedCounts counts(4);
  counts.EnableRowTracking();
  counts.Add(MakeDayCounts({{0, 1, 4}, {1, 2, 2}}, {{0, 4}, {1, 4}}));
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  EXPECT_FALSE(delta.ClosureRow(0).empty());
  delta.ClosureRow(3);  // empty row, also cached
  EXPECT_EQ(delta.CachedRows(), 2u);

  delta.ApplyDelta(&counts, DepConfig());  // nothing dirty
  EXPECT_EQ(delta.CachedRows(), 2u);
  EXPECT_EQ(delta.stats().rows_rebuilt, 0u);
  EXPECT_EQ(delta.stats().rows_changed, 0u);
  EXPECT_EQ(delta.stats().closure_rows_kept, 2u);
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());
}

TEST(DeltaClosureTest, DirtyButUnchangedRowsKeepCache) {
  // Add-then-remove of one day leaves the window identical: rows are
  // rebuilt but none change, so no cached closure row may be dropped.
  WindowedCounts counts(4);
  counts.EnableRowTracking();
  counts.Add(MakeDayCounts({{0, 1, 4}}, {{0, 4}, {1, 4}}));
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  delta.ClosureRow(0);

  const DayCounts blip = MakeDayCounts({{0, 1, 2}, {2, 3, 1}}, {{2, 2}});
  counts.Add(blip);
  counts.Remove(blip);
  delta.ApplyDelta(&counts, DepConfig());
  EXPECT_GT(delta.stats().rows_rebuilt, 0u);
  EXPECT_EQ(delta.stats().rows_changed, 0u);
  EXPECT_EQ(delta.stats().closure_rows_dropped, 0u);
  EXPECT_EQ(delta.CachedRows(), 1u);
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());
}

TEST(DeltaClosureTest, RowWhoseEntireSupportVanishes) {
  WindowedCounts counts(4);
  counts.EnableRowTracking();
  const DayCounts day =
      MakeDayCounts({{0, 1, 5}, {1, 2, 3}}, {{0, 5}, {1, 5}});
  counts.Add(day);
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  EXPECT_FALSE(delta.ClosureRow(0).empty());
  EXPECT_FALSE(delta.PRow(0).empty());

  counts.Remove(day);  // the whole window slides out
  delta.ApplyDelta(&counts, DepConfig());
  EXPECT_TRUE(delta.PRow(0).empty());
  EXPECT_TRUE(delta.PRow(1).empty());
  EXPECT_TRUE(delta.ClosureRow(0).empty());
  EXPECT_TRUE(delta.ClosureRow(1).empty());
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());
}

TEST(DeltaClosureTest, SelfDependencyCycleInvalidatesAroundTheLoop) {
  // 0 <-> 1 cycle feeding 1 -> 2: a change on row 1 must invalidate the
  // cached closure row of 0 (reachable through the cycle) and the new
  // rows must equal a batch rebuild despite the loop.
  WindowedCounts counts(4);
  counts.EnableRowTracking();
  counts.Add(MakeDayCounts({{0, 1, 8}, {1, 0, 8}, {1, 2, 2}},
                           {{0, 10}, {1, 10}}));
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  const auto before = delta.ClosureRow(0);
  double p02_before = 0.0;
  for (const auto& e : before) {
    if (e.doc == 2) p02_before = e.probability;
  }

  // Strengthen 1 -> 2.
  counts.Add(MakeDayCounts({{1, 2, 6}}, {}));
  delta.ApplyDelta(&counts, DepConfig());
  EXPECT_GE(delta.stats().closure_rows_dropped, 1u);
  double p02_after = 0.0;
  for (const auto& e : delta.ClosureRow(0)) {
    if (e.doc == 2) p02_after = e.probability;
  }
  EXPECT_GT(p02_after, p02_before);
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());
}

TEST(DeltaClosureTest, ThresholdStraddlingBothDirections) {
  // p*[0, 1] starts above a T_p of 0.5, is pushed below it by extra
  // occurrences of 0 (denominator growth), then back above it by extra
  // 0 -> 1 pairs. The incremental values must straddle exactly like a
  // batch rebuild at each step.
  const double tp = 0.5;
  WindowedCounts counts(3);
  counts.EnableRowTracking();
  counts.Add(MakeDayCounts({{0, 1, 6}}, {{0, 10}}));  // p = 0.6
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  ASSERT_FALSE(delta.ClosureRow(0).empty());
  EXPECT_GE(delta.ClosureRow(0)[0].probability, tp);

  counts.Add(MakeDayCounts({}, {{0, 5}}));  // p = 6/15 = 0.4
  delta.ApplyDelta(&counts, DepConfig());
  ASSERT_FALSE(delta.ClosureRow(0).empty());
  EXPECT_LT(delta.ClosureRow(0)[0].probability, tp);
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());

  counts.Add(MakeDayCounts({{0, 1, 6}}, {}));  // p = 12/15 = 0.8
  delta.ApplyDelta(&counts, DepConfig());
  ASSERT_FALSE(delta.ClosureRow(0).empty());
  EXPECT_GE(delta.ClosureRow(0)[0].probability, tp);
  ExpectSameAsBatch(delta, counts, DepConfig(), Config());
}

TEST(DeltaClosureTest, RebuildDropsAllCachedRows) {
  WindowedCounts counts(3);
  counts.EnableRowTracking();
  counts.Add(MakeDayCounts({{0, 1, 3}}, {{0, 3}}));
  counts.DrainDirtyRows();
  DeltaClosure delta(Config());
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  delta.ClosureRow(0);
  delta.ClosureRow(1);
  EXPECT_EQ(delta.CachedRows(), 2u);
  delta.Rebuild(counts.BuildMatrix(DepConfig()));
  EXPECT_EQ(delta.CachedRows(), 0u);
  EXPECT_EQ(delta.stats().full_rebuilds, 2u);
}

}  // namespace
}  // namespace sds::spec

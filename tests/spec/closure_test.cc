#include "spec/closure.h"

#include <gtest/gtest.h>

namespace sds::spec {
namespace {

SparseProbMatrix ChainMatrix() {
  // 0 -> 1 (0.8), 1 -> 2 (0.5), 2 -> 3 (0.5), plus 0 -> 2 direct (0.1).
  SparseProbMatrix p(4);
  p.Add(0, 1, 0.8);
  p.Add(1, 2, 0.5);
  p.Add(2, 3, 0.5);
  p.Add(0, 2, 0.1);
  p.SortRows();
  return p;
}

ClosureConfig Config(double min_prob = 0.01) {
  ClosureConfig c;
  c.min_probability = min_prob;
  return c;
}

TEST(ClosureTest, MaxProductPicksBestChain) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config());
  // p*(0,1) = 0.8; p*(0,2) = max(0.1, 0.8*0.5) = 0.4; p*(0,3) = 0.4*0.5.
  double p01 = 0.0, p02 = 0.0, p03 = 0.0;
  for (const auto& e : row) {
    if (e.doc == 1) p01 = e.probability;
    if (e.doc == 2) p02 = e.probability;
    if (e.doc == 3) p03 = e.probability;
  }
  EXPECT_NEAR(p01, 0.8, 1e-6);
  EXPECT_NEAR(p02, 0.4, 1e-6);
  EXPECT_NEAR(p03, 0.2, 1e-6);
}

TEST(ClosureTest, ClosureDominatesDirectEdges) {
  const auto p = ChainMatrix();
  const auto closure = ComputeClosure(p, Config());
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : p.Row(i)) {
      EXPECT_GE(closure.Get(i, e.doc) + 1e-6, e.probability);
    }
  }
}

TEST(ClosureTest, MinProbabilityPrunesChains) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config(0.3));
  for (const auto& e : row) {
    EXPECT_GE(e.probability, 0.3f);
    EXPECT_NE(e.doc, 3u);  // 0.2 pruned
  }
}

TEST(ClosureTest, MaxDepthLimitsChainLength) {
  ClosureConfig config = Config();
  config.max_depth = 1;
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, config);
  // Depth 1: only direct successors.
  for (const auto& e : row) {
    EXPECT_TRUE(e.doc == 1 || e.doc == 2);
    if (e.doc == 2) {
      EXPECT_NEAR(e.probability, 0.1, 1e-6);
    }
  }
}

TEST(ClosureTest, CycleTerminates) {
  SparseProbMatrix p(2);
  p.Add(0, 1, 0.9);
  p.Add(1, 0, 0.9);
  p.SortRows();
  const auto row = ComputeClosureRow(p, 0, Config());
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].doc, 1u);
  EXPECT_NEAR(row[0].probability, 0.9, 1e-6);
}

TEST(ClosureTest, SourceNeverInOwnRow) {
  const auto p = ChainMatrix();
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    for (const auto& e : ComputeClosureRow(p, i, Config())) {
      EXPECT_NE(e.doc, i);
    }
  }
}

TEST(ClosureTest, RowsSortedDescending) {
  const auto p = ChainMatrix();
  const auto row = ComputeClosureRow(p, 0, Config());
  for (size_t i = 1; i < row.size(); ++i) {
    EXPECT_GE(row[i - 1].probability, row[i].probability);
  }
}

TEST(ClosureTest, SumProductAddsParallelPaths) {
  // Two disjoint 0 -> 2 paths of probability 0.3 each: max-product gives
  // 0.3, sum-product gives 0.51 (1 - (1-0.3)^2 would be noisy-or; plain
  // sum gives 0.6 capped... our sum-product literally adds: 0.3 + 0.3).
  SparseProbMatrix p(4);
  p.Add(0, 1, 0.6);
  p.Add(1, 3, 0.5);
  p.Add(0, 2, 0.6);
  p.Add(2, 3, 0.5);
  p.SortRows();
  ClosureConfig max_config = Config();
  const auto max_row = ComputeClosureRow(p, 0, max_config);
  ClosureConfig sum_config = Config();
  sum_config.semantics = ClosureSemantics::kSumProductCapped;
  const auto sum_row = ComputeClosureRow(p, 0, sum_config);
  double max_p3 = 0.0, sum_p3 = 0.0;
  for (const auto& e : max_row) {
    if (e.doc == 3) max_p3 = e.probability;
  }
  for (const auto& e : sum_row) {
    if (e.doc == 3) sum_p3 = e.probability;
  }
  EXPECT_NEAR(max_p3, 0.3, 1e-6);
  EXPECT_NEAR(sum_p3, 0.6, 1e-6);
}

TEST(ClosureTest, SumProductCapsAtOne) {
  SparseProbMatrix p(3);
  p.Add(0, 1, 1.0);
  p.Add(1, 2, 1.0);
  p.Add(0, 2, 1.0);
  p.SortRows();
  ClosureConfig config = Config();
  config.semantics = ClosureSemantics::kSumProductCapped;
  for (const auto& e : ComputeClosureRow(p, 0, config)) {
    EXPECT_LE(e.probability, 1.0f);
  }
}

TEST(ClosureCacheTest, CachesAndResets) {
  const auto p = ChainMatrix();
  ClosureCache cache(&p, Config());
  const auto& row1 = cache.Row(0);
  EXPECT_FALSE(row1.empty());
  EXPECT_EQ(cache.CachedRows(), 1u);
  cache.Row(0);
  EXPECT_EQ(cache.CachedRows(), 1u);  // cached, not recomputed

  SparseProbMatrix empty(4);
  cache.Reset(&empty);
  EXPECT_EQ(cache.CachedRows(), 0u);
  EXPECT_TRUE(cache.Row(0).empty());
}

TEST(ClosureTest, EmptyMatrix) {
  SparseProbMatrix p(5);
  const auto closure = ComputeClosure(p, Config());
  EXPECT_EQ(closure.NumEntries(), 0u);
}

TEST(ClosureTest, FullClosureMatchesPerRow) {
  const auto p = ChainMatrix();
  const auto closure = ComputeClosure(p, Config());
  for (trace::DocumentId i = 0; i < p.num_docs(); ++i) {
    const auto row = ComputeClosureRow(p, i, Config());
    ASSERT_EQ(closure.Row(i).size(), row.size());
    for (size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(closure.Row(i)[k].doc, row[k].doc);
      EXPECT_FLOAT_EQ(closure.Row(i)[k].probability, row[k].probability);
    }
  }
}

}  // namespace
}  // namespace sds::spec

#include "obs/snapshot_diff.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

namespace sds::obs {
namespace {

/// The differ is pure and available in every build flavor, so unlike the
/// recorder suites these tests run under SDS_OBS=OFF too.

JsonValue Parse(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(GlobMatchTest, StarAndQuestionStayWithinSegments) {
  EXPECT_TRUE(GlobMatch("*_s", "total_s"));
  EXPECT_FALSE(GlobMatch("*_s", "metrics/run_s"));  // '*' stops at '/'
  EXPECT_TRUE(GlobMatch("metrics/*_s", "metrics/run_s"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "a/c"));
  EXPECT_FALSE(GlobMatch("metrics/counters/*", "metrics/points/0/spec.x"));
  EXPECT_TRUE(GlobMatch("metrics/counters/*", "metrics/counters/spec.x"));
  EXPECT_TRUE(GlobMatch("literal", "literal"));
  EXPECT_FALSE(GlobMatch("literal", "literally"));
}

TEST(GlobMatchTest, DoubleStarCrossesSegments) {
  EXPECT_TRUE(GlobMatch("**", "anything/at/all"));
  EXPECT_TRUE(GlobMatch("metrics/**", "metrics/points/0/spec.x"));
  EXPECT_TRUE(GlobMatch("**/spec.delta_cache.*",
                        "metrics/counters/spec.delta_cache.hits"));
  EXPECT_TRUE(GlobMatch("**/spec.delta_cache.*",
                        "metrics/points/7/spec.delta_cache.misses"));
  EXPECT_FALSE(GlobMatch("**/spec.delta_cache.*",
                         "metrics/counters/spec.client_requests"));
}

TEST(FlattenJsonTest, NumbersBoolsAndNestingFlatten) {
  const JsonValue doc = Parse(
      R"({"a": 1.5, "nested": {"b": 2, "deep": {"c": 3}},
          "arr": [10, 20], "flag": true, "name": "skipped",
          "nothing": null})");
  const std::map<std::string, double> flat = FlattenJsonNumbers(doc);
  EXPECT_DOUBLE_EQ(flat.at("a"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("nested/b"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("nested/deep/c"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("arr/0"), 10.0);
  EXPECT_DOUBLE_EQ(flat.at("arr/1"), 20.0);
  EXPECT_DOUBLE_EQ(flat.at("flag"), 1.0);
  EXPECT_EQ(flat.count("name"), 0u);
  EXPECT_EQ(flat.count("nothing"), 0u);
  EXPECT_EQ(flat.size(), 6u);
}

TEST(DiffSnapshotsTest, IdenticalDocumentsMatch) {
  const JsonValue a = Parse(R"({"x": 1, "nested": {"y": 2}})");
  const DiffReport report = DiffSnapshots(a, a, {});
  EXPECT_TRUE(report.Match());
  EXPECT_EQ(report.compared, 2u);
  EXPECT_EQ(report.ignored, 0u);
}

TEST(DiffSnapshotsTest, DefaultRuleIsExact) {
  const JsonValue a = Parse(R"({"x": 1.0})");
  const JsonValue b = Parse(R"({"x": 1.0000001})");
  const DiffReport report = DiffSnapshots(a, b, {});
  ASSERT_EQ(report.divergent.size(), 1u);
  EXPECT_EQ(report.divergent[0].key, "x");
  EXPECT_TRUE(report.divergent[0].in_a);
  EXPECT_TRUE(report.divergent[0].in_b);
}

TEST(DiffSnapshotsTest, MissingKeysDivergeOnEitherSide) {
  const JsonValue a = Parse(R"({"both": 1, "only_a": 2})");
  const JsonValue b = Parse(R"({"both": 1, "only_b": 3})");
  const DiffReport report = DiffSnapshots(a, b, {});
  ASSERT_EQ(report.divergent.size(), 2u);
  // Sorted merge-walk: only_a before only_b.
  EXPECT_EQ(report.divergent[0].key, "only_a");
  EXPECT_FALSE(report.divergent[0].in_b);
  EXPECT_EQ(report.divergent[1].key, "only_b");
  EXPECT_FALSE(report.divergent[1].in_a);
  EXPECT_EQ(report.compared, 1u);
}

TEST(DiffSnapshotsTest, IgnoreSuppressesValueAndMissingKeyChecks) {
  const JsonValue a = Parse(R"({"keep": 1, "drop": 2, "gone": 3})");
  const JsonValue b = Parse(R"({"keep": 1, "drop": 9})");
  DiffOptions options;
  options.rules.push_back({"drop", DiffRule::Kind::kIgnore, 0.0});
  options.rules.push_back({"gone", DiffRule::Kind::kIgnore, 0.0});
  const DiffReport report = DiffSnapshots(a, b, options);
  EXPECT_TRUE(report.Match());
  EXPECT_EQ(report.compared, 1u);
  EXPECT_EQ(report.ignored, 2u);
}

TEST(DiffSnapshotsTest, OnlyFilterRestrictsTheKeySpace) {
  const JsonValue a = Parse(R"({"metrics": {"x": 1}, "wall_s": 2.0})");
  const JsonValue b = Parse(R"({"metrics": {"x": 1}, "wall_s": 9.0})");
  DiffOptions options;
  options.only.push_back("metrics/**");
  const DiffReport report = DiffSnapshots(a, b, options);
  EXPECT_TRUE(report.Match());
  EXPECT_EQ(report.compared, 1u);
  EXPECT_EQ(report.ignored, 1u);
}

TEST(DiffSnapshotsTest, RelativeToleranceAndZeroBaselines) {
  DiffOptions options;
  options.rules.push_back({"*", DiffRule::Kind::kRelative, 0.05});
  // Within 5%: passes.
  EXPECT_TRUE(DiffSnapshots(Parse(R"({"x": 100})"), Parse(R"({"x": 104})"),
                            options)
                  .Match());
  // Beyond 5%: diverges.
  EXPECT_FALSE(DiffSnapshots(Parse(R"({"x": 100})"), Parse(R"({"x": 106})"),
                             options)
                   .Match());
  // Zero baselines stay strict: 0 vs 0 passes, 0 vs anything fails.
  EXPECT_TRUE(DiffSnapshots(Parse(R"({"x": 0})"), Parse(R"({"x": 0})"),
                            options)
                  .Match());
  EXPECT_FALSE(DiffSnapshots(Parse(R"({"x": 0})"), Parse(R"({"x": 0.001})"),
                             options)
                   .Match());
}

TEST(DiffSnapshotsTest, AbsoluteTolerance) {
  DiffOptions options;
  options.rules.push_back({"x", DiffRule::Kind::kAbsolute, 0.5});
  EXPECT_TRUE(DiffSnapshots(Parse(R"({"x": 1.0})"), Parse(R"({"x": 1.5})"),
                            options)
                  .Match());
  EXPECT_FALSE(DiffSnapshots(Parse(R"({"x": 1.0})"), Parse(R"({"x": 1.6})"),
                             options)
                   .Match());
}

TEST(DiffSnapshotsTest, FirstMatchingRuleWins) {
  const JsonValue a = Parse(R"({"metrics": {"x": 1}})");
  const JsonValue b = Parse(R"({"metrics": {"x": 5}})");
  // Ignore listed first shadows the stricter exact rule for the same key.
  DiffOptions lenient;
  lenient.rules.push_back({"metrics/**", DiffRule::Kind::kIgnore, 0.0});
  lenient.rules.push_back({"metrics/x", DiffRule::Kind::kExact, 0.0});
  EXPECT_TRUE(DiffSnapshots(a, b, lenient).Match());
  // Reversed order: exact wins and the difference surfaces.
  DiffOptions strict;
  strict.rules.push_back({"metrics/x", DiffRule::Kind::kExact, 0.0});
  strict.rules.push_back({"metrics/**", DiffRule::Kind::kIgnore, 0.0});
  EXPECT_FALSE(DiffSnapshots(a, b, strict).Match());
}

TEST(DiffSnapshotsTest, BenchPresetIgnoresTimingsButPinsCounters) {
  const JsonValue a = Parse(
      R"({"bench": "fig5", "total_s": 1.25, "workload_s": 0.5,
          "throughput_rps": 1000.0, "peak_rss_bytes": 123456,
          "metrics": {"counters": {"spec.client_requests": 500}}})");
  const JsonValue b = Parse(
      R"({"bench": "fig5", "total_s": 9.0, "workload_s": 4.0,
          "throughput_rps": 10.0, "peak_rss_bytes": 654321,
          "metrics": {"counters": {"spec.client_requests": 500}}})");
  DiffOptions options;
  options.rules = BenchPresetRules();
  const DiffReport same = DiffSnapshots(a, b, options);
  EXPECT_TRUE(same.Match())
      << (same.divergent.empty() ? "" : same.divergent[0].ToString());
  EXPECT_GE(same.ignored, 4u);

  const JsonValue c = Parse(
      R"({"bench": "fig5", "total_s": 1.25, "workload_s": 0.5,
          "throughput_rps": 1000.0, "peak_rss_bytes": 123456,
          "metrics": {"counters": {"spec.client_requests": 501}}})");
  const DiffReport diverged = DiffSnapshots(a, c, options);
  ASSERT_EQ(diverged.divergent.size(), 1u);
  EXPECT_EQ(diverged.divergent[0].key,
            "metrics/counters/spec.client_requests");
}

TEST(DiffSnapshotsTest, EntryToStringNamesKeyAndReason) {
  const JsonValue a = Parse(R"({"x": 1})");
  const JsonValue b = Parse(R"({"x": 2})");
  const DiffReport report = DiffSnapshots(a, b, {});
  ASSERT_EQ(report.divergent.size(), 1u);
  const std::string line = report.divergent[0].ToString();
  EXPECT_NE(line.find("x"), std::string::npos);
  EXPECT_NE(line.find("1"), std::string::npos);
  EXPECT_NE(line.find("2"), std::string::npos);
}

}  // namespace
}  // namespace sds::obs

#include "obs/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/sweep.h"
#include "core/workload.h"
#include "obs/export.h"
#include "obs/journey.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/json.h"

namespace sds::obs {
namespace {

/// Every test runs against the shared process-wide registry, so each one
/// starts from a clean, enabled slate and restores the disabled default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetMetrics();
    ResetTrace();
  }
  void TearDown() override {
    SetEnabled(false);
    ResetMetrics();
    ResetTrace();
  }
};

#ifndef SDS_OBS_DISABLED

TEST_F(ObsTest, CounterGaugeDistributionRoundTrip) {
  Count("test.requests");
  Count("test.requests", 4.0);
  Count("test.bytes", 1536.0);
  GaugeMax("test.depth", 3.0);
  GaugeMax("test.depth", 7.0);
  GaugeMax("test.depth", 5.0);  // lower than the high-water mark
  Observe("test.latency_s", 0.25);
  Observe("test.latency_s", 1.0);
  Observe("test.latency_s", 4.0);

  const MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.requests"), 5.0);
  EXPECT_DOUBLE_EQ(snap.counters.at("test.bytes"), 1536.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.depth"), 7.0);
  const DistData& dist = snap.distributions.at("test.latency_s");
  EXPECT_DOUBLE_EQ(dist.count, 3.0);
  EXPECT_DOUBLE_EQ(dist.sum, 5.25);
  EXPECT_DOUBLE_EQ(dist.min, 0.25);
  EXPECT_DOUBLE_EQ(dist.max, 4.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 1.75);
}

TEST_F(ObsTest, DisabledRecordingIsDropped) {
  SetEnabled(false);
  Count("test.invisible");
  Observe("test.invisible_dist", 1.0);
  GaugeMax("test.invisible_gauge", 1.0);
  SetEnabled(true);
  EXPECT_TRUE(SnapshotMetrics().empty());
}

TEST_F(ObsTest, ResetClearsEverything) {
  Count("test.reset_me", 9.0);
  Observe("test.reset_dist", 2.0);
  ASSERT_FALSE(SnapshotMetrics().empty());
  ResetMetrics();
  EXPECT_TRUE(SnapshotMetrics().empty());
}

TEST_F(ObsTest, ScopedPointAttributesCounters) {
  EXPECT_EQ(CurrentPoint(), kNoPoint);
  Count("test.global_only", 1.0);
  {
    ScopedPoint point(7);
    EXPECT_EQ(CurrentPoint(), 7);
    Count("test.per_point", 2.0);
    {
      ScopedPoint nested(8);
      EXPECT_EQ(CurrentPoint(), 8);
      Count("test.per_point", 1.0);
    }
    EXPECT_EQ(CurrentPoint(), 7);
  }
  EXPECT_EQ(CurrentPoint(), kNoPoint);

  const MetricsSnapshot snap = SnapshotMetrics();
  // Per-point counters roll up into the global total as well.
  EXPECT_DOUBLE_EQ(snap.counters.at("test.per_point"), 3.0);
  EXPECT_DOUBLE_EQ(snap.point_counters.at(7).at("test.per_point"), 2.0);
  EXPECT_DOUBLE_EQ(snap.point_counters.at(8).at("test.per_point"), 1.0);
  EXPECT_EQ(snap.point_counters.count(kNoPoint), 0u);
  EXPECT_EQ(snap.point_counters.at(7).count("test.global_only"), 0u);
}

TEST_F(ObsTest, ThreadShardsMergeOnExit) {
  // Worker threads accumulate privately and merge at join — the same
  // lifecycle RunSweep gives its pool.
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([t] {
      ScopedPoint point(t);
      Count("test.thread_work", 10.0);
      GaugeMax("test.thread_peak", static_cast<double>(t));
      Observe("test.thread_dist", static_cast<double>(t + 1));
    });
  }
  for (auto& thread : pool) thread.join();

  const MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.thread_work"), 40.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.thread_peak"), 3.0);  // max wins
  EXPECT_DOUBLE_EQ(snap.distributions.at("test.thread_dist").count, 4.0);
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(snap.point_counters.at(t).at("test.thread_work"), 10.0);
  }
}

TEST_F(ObsTest, DistBucketEdges) {
  EXPECT_EQ(DistBucketIndex(0.0), 0u);
  EXPECT_EQ(DistBucketIndex(-5.0), 0u);
  EXPECT_EQ(DistBucketIndex(std::nan("")), 0u);
  // 1.0 = 0.5 * 2^1 -> bucket 33, whose inclusive lower edge is 1.0.
  EXPECT_EQ(DistBucketIndex(1.0), 33u);
  EXPECT_DOUBLE_EQ(DistBucketLo(33), 1.0);
  EXPECT_EQ(DistBucketIndex(1.5), 33u);
  EXPECT_EQ(DistBucketIndex(2.0), 34u);
  EXPECT_EQ(DistBucketIndex(0.75), 32u);
  // Extremes clamp instead of indexing out of range.
  EXPECT_EQ(DistBucketIndex(1e300), kDistBuckets - 1);
  EXPECT_LT(DistBucketIndex(1e-300), kDistBuckets);
  // Monotone: lower edges increase with the bucket index.
  for (size_t b = 1; b + 1 < kDistBuckets; ++b) {
    EXPECT_LT(DistBucketLo(b), DistBucketLo(b + 1)) << b;
  }
}

TEST_F(ObsTest, SnapshotJsonIsWellFormedAndOrdered) {
  Count("b.second", 2.0);
  Count("a.first", 1.0);
  {
    ScopedPoint point(3);
    Count("a.first", 4.0);
  }
  Observe("d.dist", 1.5);
  GaugeMax("c.gauge", 9.0);
  const std::string json = SnapshotMetrics().ToJson();
  // Sections in schema order, keys in lexical order within a section.
  const size_t counters_pos = json.find("\"counters\"");
  const size_t gauges_pos = json.find("\"gauges\"");
  const size_t dists_pos = json.find("\"distributions\"");
  const size_t points_pos = json.find("\"points\"");
  ASSERT_NE(counters_pos, std::string::npos);
  EXPECT_LT(counters_pos, gauges_pos);
  EXPECT_LT(gauges_pos, dists_pos);
  EXPECT_LT(dists_pos, points_pos);
  EXPECT_LT(json.find("\"a.first\": 5"), json.find("\"b.second\": 2"));
  EXPECT_NE(json.find("\"c.gauge\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"d.dist\""), std::string::npos);
  EXPECT_NE(json.find("\"3\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; CI runs a real
  // JSON parser over the bench reports).
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, EmptySnapshotJson) {
  const std::string json = MetricsSnapshot{}.ToJson();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"points\": {}"), std::string::npos);
}

TEST_F(ObsTest, SpanGuardRecordsWallTimeBytesAndPoint) {
  {
    ScopedPoint point(11);
    SpanGuard span("test.stage");
    span.AddBytes(123.0);
    span.AddBytes(877.0);
  }
  const TraceSnapshot snap = SnapshotTrace();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_STREQ(snap.spans[0].name, "test.stage");
  EXPECT_GE(snap.spans[0].dur_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.spans[0].bytes, 1000.0);
  EXPECT_EQ(snap.spans[0].point, 11);
  EXPECT_EQ(snap.dropped, 0u);

  const std::string json = TraceToJson(snap);
  EXPECT_NE(json.find("\"name\": \"test.stage\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"point\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST_F(ObsTest, DisabledSpanGuardRecordsNothing) {
  SetEnabled(false);
  { SpanGuard span("test.invisible"); }
  SetEnabled(true);
  EXPECT_TRUE(SnapshotTrace().spans.empty());
}

TEST_F(ObsTest, SpanRingOverflowCountsDrops) {
  for (size_t i = 0; i < kSpanRingCapacity + 100; ++i) {
    SpanGuard span("test.flood");
  }
  const TraceSnapshot snap = SnapshotTrace();
  EXPECT_EQ(snap.spans.size(), kSpanRingCapacity);
  EXPECT_EQ(snap.dropped, 100u);
}

TEST_F(ObsTest, SpansAreSortedByStartAcrossThreads) {
  std::vector<std::thread> pool;
  for (int t = 0; t < 3; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < 20; ++i) SpanGuard span("test.sorted");
    });
  }
  for (auto& thread : pool) thread.join();
  const TraceSnapshot snap = SnapshotTrace();
  ASSERT_EQ(snap.spans.size(), 60u);
  for (size_t i = 1; i < snap.spans.size(); ++i) {
    EXPECT_LE(snap.spans[i - 1].start_s, snap.spans[i].start_s);
  }
}

// ---------------------------------------------------------------------------
// Escaping regression: metric names are caller-supplied strings, and a name
// containing a quote, backslash, or control character must not corrupt the
// emitted JSON. Validated with the in-repo parser, which rejects raw
// control characters and unbalanced quoting outright.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MetricsJsonEscapesHostileNames) {
  MetricsSnapshot snap;
  const std::string hostile = "evil\"name\\with\ncontrol\tchars";
  snap.counters[hostile] = 1.0;
  snap.gauges[hostile] = 2.0;
  snap.distributions[hostile].Add(3.0);
  snap.point_counters[0][hostile] = 4.0;

  const Result<JsonValue> parsed = ParseJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counter = parsed.value().FindPath({"counters"});
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(counter->Find(hostile), nullptr);
  EXPECT_DOUBLE_EQ(counter->Find(hostile)->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(parsed.value().FindPath({"gauges"})->Find(hostile)
                       ->AsNumber(), 2.0);
  EXPECT_NE(parsed.value().FindPath({"distributions"})->Find(hostile),
            nullptr);
  EXPECT_DOUBLE_EQ(parsed.value().FindPath({"points", "0"})->Find(hostile)
                       ->AsNumber(), 4.0);
}

TEST_F(ObsTest, TraceJsonEscapesHostileSpanNames) {
  TraceSnapshot snap;
  snap.spans.push_back(
      TraceSpan{"span\"with\\hostile\nname", 0.0, 1.0, 0.0, kNoPoint, 0});
  const Result<JsonValue> parsed = ParseJson(TraceToJson(snap));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* spans = parsed.value().Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 1u);
  EXPECT_EQ(spans->items()[0].Find("name")->AsString(),
            "span\"with\\hostile\nname");
}

// ---------------------------------------------------------------------------
// The load-bearing contract: instrumentation must not perturb simulation
// results. The golden Fig6 grid numbers below are the exact values pinned
// by tests/core/sweep_test.cc with observability off; this fixture runs
// the same sweep with it ON and expects bit-identical metrics, plus the
// per-point counters the BENCH reports export.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, InstrumentedSweepIsBitIdenticalAndAttributesPoints) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const core::Fig5Result result =
      core::RunFig5(workload, {1.0, 0.5, 0.2}, {.workers = 2});
  ASSERT_EQ(result.points.size(), 3u);
  const struct {
    double bw, load, time, miss;
  } expected[] = {
      {1.0041881918724975, 0.96365539934190847, 0.95258184119938183,
       0.94146243872170432},
      {1.0634609410122278, 0.69383787017648824, 0.64808137762783535,
       0.60213545400809099},
      {1.2877901684453081, 0.5937780436733473, 0.5725091738996323,
       0.55115225138066248},
  };
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.points[i].metrics.bandwidth_ratio, expected[i].bw) << i;
    EXPECT_EQ(result.points[i].metrics.server_load_ratio, expected[i].load)
        << i;
    EXPECT_EQ(result.points[i].metrics.service_time_ratio, expected[i].time)
        << i;
    EXPECT_EQ(result.points[i].metrics.miss_rate_ratio, expected[i].miss) << i;
  }

  const MetricsSnapshot snap = SnapshotMetrics();
  // The sweep ran its points and the simulators reported their counters.
  EXPECT_DOUBLE_EQ(snap.counters.at("sweep.points"), 3.0);
  EXPECT_GE(snap.counters.at("spec.runs"), 3.0);
  EXPECT_GT(snap.counters.at("spec.client_requests"), 0.0);
  EXPECT_GT(snap.counters.at("spec.speculative_hits"), 0.0);
  EXPECT_GT(snap.counters.at("spec.delta_cache.hits") +
                snap.counters.at("spec.delta_cache.misses"),
            0.0);
  // Per-point attribution: every sweep point saw client requests.
  for (int64_t p = 0; p < 3; ++p) {
    EXPECT_GT(snap.point_counters.at(p).at("spec.client_requests"), 0.0)
        << "point " << p;
  }
  EXPECT_GT(snap.distributions.at("sweep.point_wall_s").count, 0.0);
  // And the tracer captured the per-point spans.
  size_t point_spans = 0;
  for (const TraceSpan& span : SnapshotTrace().spans) {
    if (std::string(span.name) == "sweep.point") ++point_spans;
  }
  EXPECT_EQ(point_spans, 3u);
}

#else  // SDS_OBS_DISABLED

TEST_F(ObsTest, CompiledOutLayerIsInert) {
  SetEnabled(true);  // no-op stub
  EXPECT_FALSE(Enabled());
  Count("test.noop");
  GaugeMax("test.noop", 1.0);
  Observe("test.noop", 1.0);
  { SpanGuard span("test.noop"); }
  EXPECT_EQ(CurrentPoint(), kNoPoint);
  EXPECT_TRUE(SnapshotMetrics().empty());
  EXPECT_TRUE(SnapshotTrace().spans.empty());
  EXPECT_FALSE(WriteTrace("/tmp/never_written.json"));

  // The second-layer recorders compile to the same inert stubs.
  TsCount("test.noop", 0.0);
  TsCount("test.noop", 3600.0, 5.0);
  SetTimeSeriesWindow(60.0);
  EXPECT_DOUBLE_EQ(TimeSeriesWindow(), kDefaultTimeSeriesWindowS);
  EXPECT_TRUE(SnapshotTimeSeries().empty());
  ResetTimeSeries();
  EXPECT_FALSE(WriteTimeSeriesCsv("/tmp/never_written.csv"));

  {
    ScopedJourneySeed seed(42);
    JourneyRun run("test.noop");
    EXPECT_FALSE(run.active());
    EXPECT_FALSE(run.Sample(0));
    run.Record({});
  }
  SetJourneySamplePeriod(1);
  EXPECT_EQ(JourneySamplePeriod(), kDefaultJourneySamplePeriod);
  EXPECT_TRUE(SnapshotJourneys().journeys.empty());
  ResetJourneys();
  EXPECT_FALSE(WriteJourneys("/tmp/never_written.json"));

  EXPECT_FALSE(WritePrometheus("/tmp/never_written.prom"));
  EXPECT_FALSE(WriteChromeTrace("/tmp/never_written.trace.json"));

  // The pure renderers stay available in this flavor (tools still link).
  EXPECT_DOUBLE_EQ(DistQuantile(DistData{}, 0.5), 0.0);
  MetricsSnapshot one_counter;
  one_counter.counters["test.render"] = 1.0;
  EXPECT_NE(MetricsToPrometheus(one_counter).find("sds_test_render_total"),
            std::string::npos);
  EXPECT_FALSE(ChromeTraceJson(TraceSnapshot{}, TimeSeriesSnapshot{},
                               JourneySnapshot{})
                   .empty());
}

#endif  // SDS_OBS_DISABLED

}  // namespace
}  // namespace sds::obs

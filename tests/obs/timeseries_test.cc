#include "obs/timeseries.h"

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace sds::obs {
namespace {

#ifndef SDS_OBS_DISABLED

class TimeSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetMetrics();
    ResetTimeSeries();
    SetTimeSeriesWindow(kDefaultTimeSeriesWindowS);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetMetrics();
    ResetTimeSeries();
    SetTimeSeriesWindow(kDefaultTimeSeriesWindowS);
  }
};

TEST_F(TimeSeriesTest, BucketsBySimTimeWindow) {
  SetTimeSeriesWindow(100.0);
  TsCount("test.requests", 0.0);
  TsCount("test.requests", 99.9);
  TsCount("test.requests", 100.0);
  TsCount("test.requests", 250.0, 3.0);

  const TimeSeriesSnapshot snap = SnapshotTimeSeries();
  EXPECT_DOUBLE_EQ(snap.window_s, 100.0);
  const auto& windows = snap.total.at("test.requests");
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows.at(0), 2.0);
  EXPECT_DOUBLE_EQ(windows.at(1), 1.0);
  EXPECT_DOUBLE_EQ(windows.at(2), 3.0);
}

TEST_F(TimeSeriesTest, AttributesSweepPoints) {
  SetTimeSeriesWindow(10.0);
  TsCount("test.rollup_only", 5.0);
  {
    ScopedPoint point(4);
    TsCount("test.pointed", 5.0, 2.0);
  }
  const TimeSeriesSnapshot snap = SnapshotTimeSeries();
  EXPECT_DOUBLE_EQ(snap.total.at("test.pointed").at(0), 2.0);
  EXPECT_DOUBLE_EQ(snap.by_point.at(4).at("test.pointed").at(0), 2.0);
  // kNoPoint recordings roll up but get no per-point series.
  EXPECT_EQ(snap.by_point.count(kNoPoint), 0u);
  EXPECT_EQ(snap.by_point.at(4).count("test.rollup_only"), 0u);
}

TEST_F(TimeSeriesTest, DisabledRecordingIsDropped) {
  SetEnabled(false);
  TsCount("test.invisible", 0.0);
  SetEnabled(true);
  EXPECT_TRUE(SnapshotTimeSeries().empty());
}

TEST_F(TimeSeriesTest, ResetClears) {
  TsCount("test.reset_me", 0.0);
  ASSERT_FALSE(SnapshotTimeSeries().empty());
  ResetTimeSeries();
  EXPECT_TRUE(SnapshotTimeSeries().empty());
}

TEST_F(TimeSeriesTest, ThreadShardsMergeOnExit) {
  SetTimeSeriesWindow(60.0);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([t] {
      ScopedPoint point(t);
      TsCount("test.threaded", 30.0, 1.0);
    });
  }
  for (auto& thread : pool) thread.join();
  const TimeSeriesSnapshot snap = SnapshotTimeSeries();
  EXPECT_DOUBLE_EQ(snap.total.at("test.threaded").at(0), 4.0);
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(snap.by_point.at(t).at("test.threaded").at(0), 1.0);
  }
}

TEST_F(TimeSeriesTest, CsvHasHeaderAndRollupAndPointRows) {
  SetTimeSeriesWindow(100.0);
  {
    ScopedPoint point(2);
    TsCount("test.csv", 150.0, 7.0);
  }
  const std::string csv = SnapshotTimeSeries().ToCsv();
  EXPECT_EQ(csv.rfind("series,point,window_start_s,value\n", 0), 0u);
  // Rollup row (empty point column) and the per-point row.
  EXPECT_NE(csv.find("test.csv,,100,7"), std::string::npos);
  EXPECT_NE(csv.find("test.csv,2,100,7"), std::string::npos);
}

TEST_F(TimeSeriesTest, JsonIsParseable) {
  SetTimeSeriesWindow(50.0);
  {
    ScopedPoint point(1);
    TsCount("test.json", 75.0, 2.5);
  }
  const Result<JsonValue> parsed = ParseJson(SnapshotTimeSeries().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* value =
      parsed.value().FindPath({"points", "1", "test.json", "1"});
  ASSERT_NE(value, nullptr);
  EXPECT_DOUBLE_EQ(value->AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(
      parsed.value().Find("window_s")->AsNumber(), 50.0);
}

// ---------------------------------------------------------------------------
// The acceptance contract: per-window sums of a series equal the matching
// run-level counter, because both record identical integer-valued deltas
// at the same code sites.
// ---------------------------------------------------------------------------

TEST_F(TimeSeriesTest, WindowSumsEqualRunCounters) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  core::RunFig5(workload, {1.0, 0.5, 0.2}, {.workers = 2});

  const TimeSeriesSnapshot ts = SnapshotTimeSeries();
  const MetricsSnapshot metrics = SnapshotMetrics();
  ASSERT_FALSE(ts.empty());
  ASSERT_FALSE(metrics.counters.empty());

  size_t matched = 0;
  for (const auto& [name, windows] : ts.total) {
    const auto counter = metrics.counters.find(name);
    if (counter == metrics.counters.end()) continue;
    double sum = 0.0;
    for (const auto& [window, value] : windows) sum += value;
    if (std::floor(counter->second) == counter->second) {
      // Integer-valued counters sum exactly in doubles.
      EXPECT_DOUBLE_EQ(sum, counter->second) << name;
    } else {
      EXPECT_NEAR(sum, counter->second,
                  1e-9 * std::max(1.0, std::abs(counter->second)))
          << name;
    }
    ++matched;
  }
  // The core spec series must all be present, not vacuously matched.
  EXPECT_GE(matched, 3u);
  EXPECT_TRUE(ts.total.count("spec.client_requests"));
  EXPECT_TRUE(ts.total.count("spec.server_requests"));
  EXPECT_GT(metrics.counters.at("spec.client_requests"), 0.0);
}

TEST_F(TimeSeriesTest, PerPointSeriesAreWorkerCountInvariant) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());

  const auto run_at = [&](uint32_t workers) {
    ResetTimeSeries();
    ResetMetrics();
    core::RunFig5(workload, {1.0, 0.5, 0.2}, {.workers = workers});
    return SnapshotTimeSeries();
  };

  const TimeSeriesSnapshot serial = run_at(1);
  const TimeSeriesSnapshot parallel = run_at(2);
  ASSERT_FALSE(serial.empty());

  // A sweep point runs wholly on one thread, so its per-point series are
  // accumulated in replay order regardless of worker count: exact match.
  ASSERT_EQ(serial.by_point.size(), parallel.by_point.size());
  for (const auto& [point, series] : serial.by_point) {
    const auto& other = parallel.by_point.at(point);
    ASSERT_EQ(series.size(), other.size()) << "point " << point;
    for (const auto& [name, windows] : series) {
      const auto& other_windows = other.at(name);
      ASSERT_EQ(windows.size(), other_windows.size()) << name;
      for (const auto& [window, value] : windows) {
        EXPECT_EQ(value, other_windows.at(window))
            << name << " window " << window;
      }
    }
  }
}

#endif  // !SDS_OBS_DISABLED

}  // namespace
}  // namespace sds::obs

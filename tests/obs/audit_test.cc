#include "obs/audit.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/workload.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace sds::obs {
namespace {

#ifndef SDS_OBS_DISABLED

/// Audit tests share the process-wide metrics registry and audit switches
/// with every other suite in this binary, so each test starts from a clean
/// enabled slate and restores the disabled default. Test-only invariants
/// registered here use "audit_test."-prefixed counters: the per-scope skip
/// rule keeps them inert for every scope that never emits those counters.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetAuditEnabled(true);
    SetAuditStrict(false);
    ResetMetrics();
    ResetAudit();
    ResetFlight();
    prev_dump_path_ = FlightDumpPath();
    SetFlightDumpPath(testing::TempDir() + "audit_test_flight.json");
  }
  void TearDown() override {
    SetFlightDumpPath(prev_dump_path_);
    ResetFlight();
    ResetAudit();
    ResetMetrics();
    SetAuditStrict(false);
    SetAuditEnabled(false);
    SetEnabled(false);
  }

  std::string prev_dump_path_;
};

// ---------------------------------------------------------------------------
// Pure checker semantics (CheckInvariants over hand-built snapshots).
// ---------------------------------------------------------------------------

TEST_F(AuditTest, CheckerNamesEdgeSidesAndDelta) {
  const std::vector<AuditInvariant> invariants = {
      {"test.conservation",
       AuditKind::kEqual,
       {{"audit_test.in"}},
       {{"audit_test.out"}, {"audit_test.lost"}}}};
  MetricsSnapshot snap;
  snap.counters["audit_test.in"] = 100.0;
  snap.counters["audit_test.out"] = 90.0;
  snap.counters["audit_test.lost"] = 7.0;  // 3 requests leaked

  const auto violations = CheckInvariants(invariants, snap, "unit");
  ASSERT_EQ(violations.size(), 1u);
  const AuditViolation& v = violations[0];
  EXPECT_EQ(v.invariant, "test.conservation");
  EXPECT_EQ(v.lhs_expr, "audit_test.in");
  EXPECT_EQ(v.rhs_expr, "audit_test.out + audit_test.lost");
  EXPECT_DOUBLE_EQ(v.lhs, 100.0);
  EXPECT_DOUBLE_EQ(v.rhs, 97.0);
  EXPECT_DOUBLE_EQ(v.delta, 3.0);
  EXPECT_EQ(v.point, kNoPoint);
  EXPECT_EQ(v.where, "unit");
  // The one-line report carries the name, both rendered sides and the delta.
  const std::string report = v.ToString();
  EXPECT_NE(report.find("test.conservation"), std::string::npos);
  EXPECT_NE(report.find("audit_test.out + audit_test.lost"), std::string::npos);
  EXPECT_NE(report.find("delta 3"), std::string::npos);
  EXPECT_NE(report.find("unit"), std::string::npos);
}

TEST_F(AuditTest, CheckerSkipsScopeWithNoCountersButZeroFillsPartial) {
  const std::vector<AuditInvariant> invariants = {
      {"test.partial",
       AuditKind::kEqual,
       {{"audit_test.present"}},
       {{"audit_test.absent"}}}};
  // No counter of the edge exists: the subsystem did not run, skip.
  MetricsSnapshot empty;
  empty.counters["unrelated.counter"] = 5.0;
  EXPECT_TRUE(CheckInvariants(invariants, empty, "unit").empty());

  // One side exists: the missing counter reads zero and the edge fires.
  MetricsSnapshot partial;
  partial.counters["audit_test.present"] = 4.0;
  const auto violations = CheckInvariants(invariants, partial, "unit");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_DOUBLE_EQ(violations[0].rhs, 0.0);
}

TEST_F(AuditTest, CheckerAttributesPerPointScopes) {
  const std::vector<AuditInvariant> invariants = {
      {"test.per_point",
       AuditKind::kEqual,
       {{"audit_test.in"}},
       {{"audit_test.out"}}}};
  MetricsSnapshot snap;
  snap.counters["audit_test.in"] = 10.0;  // run totals balance
  snap.counters["audit_test.out"] = 10.0;
  snap.point_counters[0] = {{"audit_test.in", 6.0}, {"audit_test.out", 6.0}};
  snap.point_counters[3] = {{"audit_test.in", 4.0}, {"audit_test.out", 2.0}};

  const auto violations = CheckInvariants(invariants, snap, "sweep.join");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].point, 3);
  EXPECT_DOUBLE_EQ(violations[0].delta, 2.0);
}

TEST_F(AuditTest, CheckerHonorsKindCoefficientsAndTolerance) {
  const std::vector<AuditInvariant> invariants = {
      {"test.bound",
       AuditKind::kLessOrEqual,
       {{"audit_test.used"}},
       {{"audit_test.budget", 2.0}},
       0.5}};
  MetricsSnapshot within;
  within.counters["audit_test.used"] = 20.4;
  within.counters["audit_test.budget"] = 10.0;  // bound = 2*10 + 0.5 slack
  EXPECT_TRUE(CheckInvariants(invariants, within, "unit").empty());

  MetricsSnapshot beyond;
  beyond.counters["audit_test.used"] = 20.6;
  beyond.counters["audit_test.budget"] = 10.0;
  const auto violations = CheckInvariants(invariants, beyond, "unit");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rhs_expr, "2*audit_test.budget");
}

// ---------------------------------------------------------------------------
// Registered-ledger path: a deliberately broken accumulator is caught,
// named, and leaves a parseable flight dump (the fault-injection drill the
// production checkpoint runs when real flow leaks).
// ---------------------------------------------------------------------------

TEST_F(AuditTest, BrokenAccumulatorIsCaughtNamedAndDumped) {
  RegisterAuditInvariant("audit_test.broken_edge", AuditKind::kEqual,
                         {{"audit_test.fault.in"}},
                         {{"audit_test.fault.out"}});
  // Re-registration is idempotent by name, like simulator constructors.
  RegisterAuditInvariant("audit_test.broken_edge", AuditKind::kEqual,
                         {{"audit_test.fault.in"}},
                         {{"audit_test.fault.out"}});
  size_t registered = 0;
  for (const AuditInvariant& inv : RegisteredAuditInvariants()) {
    if (std::string(inv.name) == "audit_test.broken_edge") ++registered;
  }
  EXPECT_EQ(registered, 1u);

  // Seed the fault: the "out" accumulator drops two units.
  Count("audit_test.fault.in", 12.0);
  Count("audit_test.fault.out", 10.0);
  FlightRecord(41, "audit_test.stage", "dropped", 7, 2.0);

  const auto violations = CheckAudit("audit_test");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "audit_test.broken_edge");
  EXPECT_DOUBLE_EQ(violations[0].delta, 2.0);

  // The production checkpoint reports, records, and dumps the recorder.
  EXPECT_EQ(AuditCheckpoint("audit_test.checkpoint"), 1u);
  const auto report = AuditReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].invariant, "audit_test.broken_edge");
  EXPECT_EQ(report[0].where, "audit_test.checkpoint");

  // The flight dump landed at the configured path and holds our event.
  std::FILE* f = std::fopen(FlightDumpPath(), "rb");
  ASSERT_NE(f, nullptr) << "no flight dump at " << FlightDumpPath();
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const Result<JsonValue> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 1u);
  EXPECT_EQ(events->items()[0].Find("decision")->AsString(), "dropped");

  ResetAudit();
  EXPECT_TRUE(AuditReport().empty());
}

TEST_F(AuditTest, CheckpointIsInertWhenAuditDisabled) {
  RegisterAuditInvariant("audit_test.broken_edge", AuditKind::kEqual,
                         {{"audit_test.fault.in"}},
                         {{"audit_test.fault.out"}});
  Count("audit_test.fault.in", 5.0);  // seeded mismatch again
  SetAuditEnabled(false);
  EXPECT_EQ(AuditCheckpoint("audit_test.disabled"), 0u);
  EXPECT_TRUE(AuditReport().empty());
}

// ---------------------------------------------------------------------------
// The registered production invariants hold on real sweeps, at every worker
// count, and auditing never perturbs the simulation (bit-identity against
// the golden grid pinned by obs_test.cc / sweep_test.cc).
// ---------------------------------------------------------------------------

TEST_F(AuditTest, ProductionInvariantsHoldAtEveryWorkerCount) {
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned workers : {1u, 2u, hw}) {
    ResetMetrics();
    const core::Fig5Result result =
        core::RunFig5(workload, {1.0, 0.5}, {.workers = workers});
    ASSERT_EQ(result.points.size(), 2u) << "workers=" << workers;
    for (const AuditViolation& v : CheckAudit("audit_test.workers")) {
      ADD_FAILURE() << "workers=" << workers << ": " << v.ToString();
    }
  }
  // The run registered the speculation flow edges.
  bool saw_request_edge = false;
  for (const AuditInvariant& inv : RegisteredAuditInvariants()) {
    if (std::string(inv.name) == "spec.request_conservation") {
      saw_request_edge = true;
    }
  }
  EXPECT_TRUE(saw_request_edge);
}

TEST_F(AuditTest, AuditOnSweepIsBitIdenticalToGolden) {
  // Same golden Fig5 grid as ObsTest.InstrumentedSweepIsBitIdentical...,
  // now with the audit ledger armed: sweep.join checkpoints fire and the
  // results must still match to the last bit.
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());
  const core::Fig5Result result =
      core::RunFig5(workload, {1.0, 0.5, 0.2}, {.workers = 2});
  ASSERT_EQ(result.points.size(), 3u);
  const struct {
    double bw, load, time, miss;
  } expected[] = {
      {1.0041881918724975, 0.96365539934190847, 0.95258184119938183,
       0.94146243872170432},
      {1.0634609410122278, 0.69383787017648824, 0.64808137762783535,
       0.60213545400809099},
      {1.2877901684453081, 0.5937780436733473, 0.5725091738996323,
       0.55115225138066248},
  };
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.points[i].metrics.bandwidth_ratio, expected[i].bw) << i;
    EXPECT_EQ(result.points[i].metrics.server_load_ratio, expected[i].load)
        << i;
    EXPECT_EQ(result.points[i].metrics.service_time_ratio, expected[i].time)
        << i;
    EXPECT_EQ(result.points[i].metrics.miss_rate_ratio, expected[i].miss) << i;
  }
  // The sweep's own checkpoints found nothing, and neither do we.
  EXPECT_TRUE(AuditReport().empty());
  for (const AuditViolation& v : CheckAudit("audit_test.golden")) {
    ADD_FAILURE() << v.ToString();
  }
}

#else  // SDS_OBS_DISABLED

TEST(AuditDisabledTest, CompiledOutLedgerIsInert) {
  SetAuditEnabled(true);  // no-op stub
  EXPECT_FALSE(AuditEnabled());
  SetAuditStrict(true);
  EXPECT_FALSE(AuditStrict());
  RegisterAuditInvariant("audit_test.noop", AuditKind::kEqual,
                         {{"audit_test.in"}}, {{"audit_test.out"}});
  EXPECT_TRUE(RegisteredAuditInvariants().empty());
  EXPECT_TRUE(CheckAudit("audit_test").empty());
  EXPECT_EQ(AuditCheckpoint("audit_test"), 0u);
  EXPECT_TRUE(AuditReport().empty());
  ResetAudit();

  // The pure checker stays available in this flavor (obs_diff and tests
  // link it), so a hand-built snapshot still checks.
  const std::vector<AuditInvariant> invariants = {
      {"test.pure", AuditKind::kEqual, {{"a"}}, {{"b"}}}};
  MetricsSnapshot snap;
  snap.counters["a"] = 2.0;
  snap.counters["b"] = 1.0;
  EXPECT_EQ(CheckInvariants(invariants, snap, "unit").size(), 1u);
}

#endif  // SDS_OBS_DISABLED

}  // namespace
}  // namespace sds::obs

#include "obs/export.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/json.h"

namespace sds::obs {
namespace {

// The exporters are pure functions over snapshots, so this suite runs in
// both build flavors (including -DSDS_OBS=OFF).

DistData MakeDist(std::initializer_list<double> values) {
  DistData dist;
  for (const double v : values) dist.Add(v);
  return dist;
}

TEST(DistQuantileTest, EmptyDistributionIsZero) {
  EXPECT_DOUBLE_EQ(DistQuantile(DistData{}, 0.5), 0.0);
}

TEST(DistQuantileTest, SingleValuedDistributionIsExact) {
  const DistData dist = MakeDist({3.25, 3.25, 3.25, 3.25});
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(DistQuantile(dist, q), 3.25) << q;
  }
}

TEST(DistQuantileTest, EndpointsAreMinAndMax) {
  const DistData dist = MakeDist({1.0, 2.0, 4.0, 8.0, 100.0});
  EXPECT_DOUBLE_EQ(DistQuantile(dist, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(DistQuantile(dist, 1.0), 100.0);
  // Out-of-range quantiles clamp to the endpoints.
  EXPECT_DOUBLE_EQ(DistQuantile(dist, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(DistQuantile(dist, 1.5), 100.0);
}

TEST(DistQuantileTest, MonotoneInQuantile) {
  const DistData dist =
      MakeDist({0.1, 0.5, 1.0, 1.5, 2.0, 4.0, 8.0, 8.5, 100.0, 1000.0});
  double previous = DistQuantile(dist, 0.0);
  for (int step = 1; step <= 100; ++step) {
    const double q = static_cast<double>(step) / 100.0;
    const double value = DistQuantile(dist, q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(DistQuantileTest, InterpolatesWithinBucketsOnAKnownDistribution) {
  // Four samples in four distinct log2 buckets: [1,2) [2,4) [4,8) [8,16).
  const DistData dist = MakeDist({1.0, 2.0, 4.0, 8.0});
  // rank(0.5) = 2 falls at the boundary of the second bucket, whose
  // [lo, hi) is [2, 4): interpolation returns its upper edge region.
  const double p50 = DistQuantile(dist, 0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 4.0);
  // All estimates live inside [min, max].
  for (int step = 0; step <= 20; ++step) {
    const double q = static_cast<double>(step) / 20.0;
    const double v = DistQuantile(dist, q);
    EXPECT_GE(v, dist.min);
    EXPECT_LE(v, dist.max);
  }
}

TEST(DistQuantileTest, TightensOutermostBucketsToObservedExtremes) {
  // Both samples land in the [2, 4) bucket; the naive bucket edges would
  // report quantiles outside [3.0, 3.5].
  const DistData dist = MakeDist({3.0, 3.5});
  EXPECT_DOUBLE_EQ(DistQuantile(dist, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(DistQuantile(dist, 1.0), 3.5);
  for (int step = 0; step <= 10; ++step) {
    const double v = DistQuantile(dist, static_cast<double>(step) / 10.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LE(v, 3.5);
  }
}

TEST(PrometheusTest, SanitizesNames) {
  EXPECT_EQ(PrometheusName("spec.delta_cache.hits"),
            "spec_delta_cache_hits");
  EXPECT_EQ(PrometheusName("already_fine:ok"), "already_fine:ok");
  EXPECT_EQ(PrometheusName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(PrometheusName("weird name/with\"chars"),
            "weird_name_with_chars");
}

TEST(PrometheusTest, RendersCountersGaugesAndHistograms) {
  MetricsSnapshot snap;
  snap.counters["spec.runs"] = 6.0;
  snap.point_counters[0]["spec.runs"] = 2.0;
  snap.point_counters[1]["spec.runs"] = 4.0;
  snap.gauges["queue.max_depth"] = 17.0;
  snap.distributions["queue.response_s"] = MakeDist({0.5, 1.0, 3.0});

  const std::string text = MetricsToPrometheus(snap);
  EXPECT_NE(text.find("# TYPE sds_spec_runs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sds_spec_runs_total{point=\"all\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("sds_spec_runs_total{point=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("sds_spec_runs_total{point=\"1\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sds_queue_max_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sds_queue_max_depth 17"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sds_queue_response_s histogram"),
            std::string::npos);
  // The +Inf bucket equals the count, and sum/count lines close the
  // family.
  EXPECT_NE(text.find("sds_queue_response_s_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("sds_queue_response_s_sum 4.5"), std::string::npos);
  EXPECT_NE(text.find("sds_queue_response_s_count 3"), std::string::npos);
  // Exposition format ends every line with \n (prom lint requirement).
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsSnapshot snap;
  snap.distributions["d"] = MakeDist({1.0, 2.0, 2.5, 4.0});
  const std::string text = MetricsToPrometheus(snap);
  // Buckets: [1,2) holds 1, [2,4) holds 2, [4,8) holds 1 -> cumulative
  // counts 1, 3, 4 at le 2, 4, 8.
  EXPECT_NE(text.find("sds_d_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sds_d_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("sds_d_bucket{le=\"8\"} 4"), std::string::npos);
}

TEST(ChromeTraceTest, EmptySnapshotsStillParse) {
  const std::string json =
      ChromeTraceJson(TraceSnapshot{}, TimeSeriesSnapshot{},
                      JourneySnapshot{});
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only the three process_name metadata events.
  EXPECT_EQ(events->items().size(), 3u);
}

TEST(ChromeTraceTest, RendersSpansSeriesAndJourneys) {
  TraceSnapshot trace;
  trace.spans.push_back(TraceSpan{"stage.a", 0.5, 0.25, 64.0, 7, 1});

  TimeSeriesSnapshot ts;
  ts.window_s = 100.0;
  ts.total["spec.server_requests"][2] = 12.0;

  JourneySnapshot journeys;
  JourneyRecord j;
  j.stream = "spec";
  j.point = 7;
  j.run = 1;
  j.request = 33;
  j.time_s = 250.0;
  j.client = 4;
  j.doc = 9;
  j.served_by = kServedByServer;
  j.retries = 2;
  j.response_bytes = 512.0;
  j.transfer_s = 0.125;
  journeys.journeys.push_back(j);

  const std::string json = ChromeTraceJson(trace, ts, journeys);
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_span = false;
  bool saw_counter = false;
  bool saw_journey = false;
  for (const JsonValue& e : events->items()) {
    const std::string ph = e.Find("ph")->AsString();
    const std::string name = e.Find("name")->AsString();
    if (ph == "X" && name == "stage.a") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(e.Find("pid")->AsNumber(), 0.0);
      EXPECT_DOUBLE_EQ(e.Find("ts")->AsNumber(), 0.5 * 1e6);
      EXPECT_DOUBLE_EQ(e.Find("dur")->AsNumber(), 0.25 * 1e6);
      EXPECT_DOUBLE_EQ(e.FindPath({"args", "point"})->AsNumber(), 7.0);
    }
    if (ph == "C" && name == "spec.server_requests") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.Find("pid")->AsNumber(), 1.0);
      EXPECT_DOUBLE_EQ(e.Find("ts")->AsNumber(), 2.0 * 100.0 * 1e6);
      EXPECT_DOUBLE_EQ(e.FindPath({"args", "value"})->AsNumber(), 12.0);
    }
    if (ph == "X" && name == "spec") {
      saw_journey = true;
      EXPECT_DOUBLE_EQ(e.Find("pid")->AsNumber(), 2.0);
      EXPECT_DOUBLE_EQ(e.Find("tid")->AsNumber(), 4.0);
      EXPECT_DOUBLE_EQ(e.FindPath({"args", "request"})->AsNumber(), 33.0);
      EXPECT_DOUBLE_EQ(e.FindPath({"args", "retries"})->AsNumber(), 2.0);
      EXPECT_DOUBLE_EQ(e.FindPath({"args", "response_bytes"})->AsNumber(),
                       512.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_journey);
}

TEST(ChromeTraceTest, EscapesNames) {
  TraceSnapshot trace;
  trace.spans.push_back(TraceSpan{"bad\"name\nwith\tescapes", 0.0, 1.0,
                                  0.0, kNoPoint, 0});
  const std::string json =
      ChromeTraceJson(trace, TimeSeriesSnapshot{}, JourneySnapshot{});
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool found = false;
  for (const JsonValue& e : parsed.value().Find("traceEvents")->items()) {
    if (e.Find("name")->AsString() == "bad\"name\nwith\tescapes") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsJsonTest, PercentilesAppearInDistributionJson) {
  MetricsSnapshot snap;
  snap.distributions["lat"] = MakeDist({2.0, 2.0, 2.0});
  const std::string json = snap.ToJson();
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* dist = parsed.value().FindPath({"distributions", "lat"});
  ASSERT_NE(dist, nullptr);
  // Single-valued distribution: the interpolated percentiles are exact.
  EXPECT_DOUBLE_EQ(dist->Find("p50")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(dist->Find("p95")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(dist->Find("p99")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(dist->Find("max")->AsNumber(), 2.0);
}

}  // namespace
}  // namespace sds::obs

#include "obs/journey.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/sweep.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace sds::obs {
namespace {

#ifndef SDS_OBS_DISABLED

class JourneyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetMetrics();
    ResetJourneys();
    SetJourneySamplePeriod(kDefaultJourneySamplePeriod);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetMetrics();
    ResetJourneys();
    SetJourneySamplePeriod(kDefaultJourneySamplePeriod);
  }
};

TEST_F(JourneyTest, SamplerIsAPureFunctionOfSeedAndIndex) {
  SetJourneySamplePeriod(8);
  std::vector<bool> first;
  {
    ScopedJourneySeed seed(12345);
    JourneyRun run("test");
    for (uint64_t i = 0; i < 256; ++i) first.push_back(run.Sample(i));
  }
  ResetJourneys();
  {
    ScopedJourneySeed seed(12345);
    JourneyRun run("test");
    for (uint64_t i = 0; i < 256; ++i) {
      EXPECT_EQ(run.Sample(i), first[i]) << i;
    }
  }
  // A different seed samples a different set (overwhelmingly likely for
  // 256 draws at period 8).
  ResetJourneys();
  {
    ScopedJourneySeed seed(99999);
    JourneyRun run("test");
    bool any_differs = false;
    for (uint64_t i = 0; i < 256; ++i) {
      if (run.Sample(i) != first[i]) any_differs = true;
    }
    EXPECT_TRUE(any_differs);
  }
  // Period 1 samples everything.
  SetJourneySamplePeriod(1);
  ResetJourneys();
  {
    ScopedJourneySeed seed(12345);
    JourneyRun run("test");
    for (uint64_t i = 0; i < 64; ++i) EXPECT_TRUE(run.Sample(i));
  }
}

TEST_F(JourneyTest, RunOrdinalsAdvancePerPoint) {
  {
    ScopedPoint point(3);
    JourneyRun a("test");
    JourneyRun b("test");
    a.Record({});
    b.Record({});
  }
  {
    ScopedPoint point(9);
    JourneyRun c("test");
    c.Record({});
  }
  const JourneySnapshot snap = SnapshotJourneys();
  ASSERT_EQ(snap.journeys.size(), 3u);
  EXPECT_EQ(snap.journeys[0].point, 3);
  EXPECT_EQ(snap.journeys[0].run, 0u);
  EXPECT_EQ(snap.journeys[1].point, 3);
  EXPECT_EQ(snap.journeys[1].run, 1u);
  // A fresh point starts its ordinals at zero again.
  EXPECT_EQ(snap.journeys[2].point, 9);
  EXPECT_EQ(snap.journeys[2].run, 0u);
}

TEST_F(JourneyTest, RecordStampsRunIdentityAndSnapshotSorts) {
  SetJourneySamplePeriod(1);
  {
    ScopedPoint point(5);
    JourneyRun run("test");
    // Record out of order; the snapshot must sort by request.
    JourneyRecord second;
    second.request = 2;
    second.doc = 42;
    run.Record(second);
    JourneyRecord first;
    first.request = 1;
    run.Record(first);
  }
  const JourneySnapshot snap = SnapshotJourneys();
  ASSERT_EQ(snap.journeys.size(), 2u);
  EXPECT_EQ(snap.journeys[0].request, 1u);
  EXPECT_EQ(snap.journeys[1].request, 2u);
  EXPECT_EQ(snap.journeys[1].doc, 42);
  EXPECT_EQ(snap.journeys[0].point, 5);
  EXPECT_STREQ(snap.journeys[0].stream, "test");
}

TEST_F(JourneyTest, DisabledRunRecordsNothing) {
  SetEnabled(false);
  JourneyRun run("test");
  EXPECT_FALSE(run.active());
  EXPECT_FALSE(run.Sample(0));
  run.Record({});
  SetEnabled(true);
  EXPECT_TRUE(SnapshotJourneys().journeys.empty());
}

TEST_F(JourneyTest, CapacityCapCountsDrops) {
  SetJourneySamplePeriod(1);
  JourneyRun run("test");
  for (size_t i = 0; i < kJourneyCapacity + 50; ++i) {
    JourneyRecord j;
    j.request = i;
    run.Record(j);
  }
  const JourneySnapshot snap = SnapshotJourneys();
  EXPECT_EQ(snap.journeys.size(), kJourneyCapacity);
  EXPECT_EQ(snap.dropped, 50u);
}

TEST_F(JourneyTest, JsonIsParseableAndCarriesFields) {
  SetJourneySamplePeriod(1);
  {
    ScopedPoint point(2);
    JourneyRun run("test");
    JourneyRecord j;
    j.request = 7;
    j.time_s = 123.5;
    j.client = 11;
    j.doc = 13;
    j.served_by = kServedByCache;
    j.retries = 1;
    j.response_bytes = 2048.0;
    j.queue_s = 0.25;
    run.Record(j);
  }
  const std::string json = SnapshotJourneys().ToJson();
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* journeys = parsed.value().Find("journeys");
  ASSERT_NE(journeys, nullptr);
  ASSERT_EQ(journeys->items().size(), 1u);
  const JsonValue& j = journeys->items()[0];
  EXPECT_EQ(j.Find("stream")->AsString(), "test");
  EXPECT_DOUBLE_EQ(j.Find("request")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(j.Find("time_s")->AsNumber(), 123.5);
  EXPECT_DOUBLE_EQ(j.Find("served_by")->AsNumber(),
                   static_cast<double>(kServedByCache));
  EXPECT_DOUBLE_EQ(j.Find("queue_s")->AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(j.Find("point")->AsNumber(), 2.0);
}

// ---------------------------------------------------------------------------
// The acceptance contract: the sampled journey set is bit-identical across
// sweep worker counts (1, 2, and the hardware default), because sampling
// is keyed on (sweep point seed, request index) and run ordinals are
// assigned per point rather than per thread.
// ---------------------------------------------------------------------------

bool SameJourney(const JourneyRecord& a, const JourneyRecord& b) {
  return std::string(a.stream) == b.stream && a.point == b.point &&
         a.run == b.run && a.request == b.request && a.time_s == b.time_s &&
         a.client == b.client && a.doc == b.doc &&
         a.served_by == b.served_by && a.hops == b.hops &&
         a.failover_depth == b.failover_depth && a.retries == b.retries &&
         a.pushed_docs == b.pushed_docs &&
         a.response_bytes == b.response_bytes && a.queue_s == b.queue_s &&
         a.transfer_s == b.transfer_s && a.backoff_s == b.backoff_s;
}

TEST_F(JourneyTest, SampledSetIsWorkerCountInvariant) {
  SetJourneySamplePeriod(16);
  const core::Workload workload = core::MakeWorkload(core::SmallConfig());

  const auto run_at = [&](uint32_t workers) {
    ResetJourneys();
    ResetMetrics();
    core::RunFig5(workload, {1.0, 0.5, 0.2}, {.workers = workers});
    return SnapshotJourneys();
  };

  const JourneySnapshot serial = run_at(1);
  ASSERT_FALSE(serial.journeys.empty());

  const uint32_t hw = core::ResolveSweepWorkers(0);
  for (const uint32_t workers : {2u, hw}) {
    const JourneySnapshot parallel = run_at(workers);
    ASSERT_EQ(serial.journeys.size(), parallel.journeys.size())
        << workers << " workers";
    for (size_t i = 0; i < serial.journeys.size(); ++i) {
      EXPECT_TRUE(SameJourney(serial.journeys[i], parallel.journeys[i]))
          << "journey " << i << " differs at " << workers << " workers";
    }
  }
}

#endif  // !SDS_OBS_DISABLED

}  // namespace
}  // namespace sds::obs

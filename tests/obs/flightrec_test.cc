#include "obs/flightrec.h"

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace sds::obs {
namespace {

#ifndef SDS_OBS_DISABLED

/// Recording needs both the metrics layer and the audit ledger on; each
/// test arms both and restores the disabled defaults.
class FlightrecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetAuditEnabled(true);
    ResetMetrics();
    ResetFlight();
    prev_dump_path_ = FlightDumpPath();
  }
  void TearDown() override {
    SetFlightDumpPath(prev_dump_path_);
    ResetFlight();
    ResetMetrics();
    SetAuditEnabled(false);
    SetEnabled(false);
  }

  std::string prev_dump_path_;
};

TEST_F(FlightrecTest, RingKeepsNewestAndCountsDropped) {
  const uint64_t total = kFlightRingCapacity + 100;
  for (uint64_t i = 0; i < total; ++i) {
    FlightRecord(i, "test.stage", "keep", static_cast<int64_t>(i),
                 static_cast<double>(i));
  }
  const FlightSnapshot snap = SnapshotFlight();
  ASSERT_EQ(snap.events.size(), kFlightRingCapacity);
  EXPECT_EQ(snap.dropped, 100u);
  // Oldest 100 were overwritten; the survivors are the newest, seq-sorted.
  EXPECT_EQ(snap.events.front().request, 100u);
  EXPECT_EQ(snap.events.back().request, total - 1);
  for (size_t i = 1; i < snap.events.size(); ++i) {
    ASSERT_LT(snap.events[i - 1].seq, snap.events[i].seq);
  }
}

TEST_F(FlightrecTest, JsonSchemaRoundTrips) {
  FlightRecord(7, "spec.request", "cache_hit", 42, 1536.0);
  {
    ScopedPoint point(3);
    FlightRecord(8, "spec.push", "duplicate_waste", 9);
  }
  const FlightSnapshot snap = SnapshotFlight();
  ASSERT_EQ(snap.events.size(), 2u);

  const Result<JsonValue> parsed = ParseJson(FlightToJson(snap));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* dropped = parsed.value().Find("dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->AsNumber(), 0.0);
  const JsonValue* events = parsed.value().Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  const JsonValue& first = events->items()[0];
  for (const char* field :
       {"seq", "request", "stage", "decision", "entity", "value", "point",
        "tid"}) {
    EXPECT_NE(first.Find(field), nullptr) << "missing field " << field;
  }
  EXPECT_DOUBLE_EQ(first.Find("request")->AsNumber(), 7.0);
  EXPECT_EQ(first.Find("stage")->AsString(), "spec.request");
  EXPECT_EQ(first.Find("decision")->AsString(), "cache_hit");
  EXPECT_DOUBLE_EQ(first.Find("entity")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(first.Find("value")->AsNumber(), 1536.0);
  const JsonValue& second = events->items()[1];
  EXPECT_DOUBLE_EQ(second.Find("point")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(second.Find("value")->AsNumber(), 0.0);
}

TEST_F(FlightrecTest, RecordingIsGatedOnBothSwitches) {
  SetAuditEnabled(false);
  FlightRecord(1, "test.stage", "invisible");
  EXPECT_TRUE(SnapshotFlight().events.empty());

  SetAuditEnabled(true);
  SetEnabled(false);
  FlightRecord(2, "test.stage", "invisible");
  EXPECT_TRUE(SnapshotFlight().events.empty());

  SetEnabled(true);
  FlightRecord(3, "test.stage", "visible");
  EXPECT_EQ(SnapshotFlight().events.size(), 1u);
}

TEST_F(FlightrecTest, ThreadsMergeAtJoin) {
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) {
    pool.emplace_back([t] {
      for (uint64_t i = 0; i < 5; ++i) {
        FlightRecord(i, "test.thread", "work", t);
      }
    });
  }
  for (auto& thread : pool) thread.join();

  const FlightSnapshot snap = SnapshotFlight();
  ASSERT_EQ(snap.events.size(), 10u);
  std::set<int32_t> tids;
  for (const FlightEvent& e : snap.events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 2u);
}

TEST_F(FlightrecTest, WriteDumpAndReset) {
  FlightRecord(1, "test.stage", "kept");
  const std::string path = testing::TempDir() + "flightrec_test_dump.json";
  ASSERT_TRUE(WriteFlight(path));
  EXPECT_FALSE(WriteFlight(""));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const Result<JsonValue> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("events")->items().size(), 1u);

  ResetFlight();
  const FlightSnapshot cleared = SnapshotFlight();
  EXPECT_TRUE(cleared.events.empty());
  EXPECT_EQ(cleared.dropped, 0u);
}

TEST_F(FlightrecTest, DumpPathRoundTripsAndHandlerInstalls) {
  SetFlightDumpPath("/tmp/flightrec_test_path.json");
  EXPECT_STREQ(FlightDumpPath(), "/tmp/flightrec_test_path.json");
  // Idempotent best-effort signal hooks (the bench --audit path).
  EXPECT_TRUE(InstallFlightSignalHandler());
  EXPECT_TRUE(InstallFlightSignalHandler());
}

#else  // SDS_OBS_DISABLED

TEST(FlightrecDisabledTest, CompiledOutRecorderIsInert) {
  FlightRecord(1, "test.stage", "noop", 2, 3.0);
  EXPECT_TRUE(SnapshotFlight().events.empty());
  EXPECT_EQ(SnapshotFlight().dropped, 0u);
  ResetFlight();
  EXPECT_FALSE(WriteFlight("/tmp/never_written.json"));
  SetFlightDumpPath("/tmp/never_used.json");
  EXPECT_STREQ(FlightDumpPath(), "");
  EXPECT_FALSE(InstallFlightSignalHandler());

  // The pure renderer stays available in this flavor.
  const Result<JsonValue> parsed = ParseJson(FlightToJson(FlightSnapshot{}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().Find("events")->items().empty());
}

#endif  // SDS_OBS_DISABLED

}  // namespace
}  // namespace sds::obs

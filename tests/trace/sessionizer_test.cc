#include "trace/sessionizer.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace sds::trace {
namespace {

Trace MakeTrace(std::vector<std::pair<ClientId, SimTime>> entries) {
  Trace trace;
  uint32_t max_client = 0;
  for (const auto& [client, time] : entries) {
    Request r;
    r.client = client;
    r.time = time;
    r.doc = 0;
    trace.requests.push_back(r);
    max_client = std::max(max_client, client + 1);
  }
  trace.num_clients = max_client;
  trace.SortByTime();
  return trace;
}

TEST(GroupByClientTest, SplitsStreams) {
  const Trace trace = MakeTrace({{0, 1.0}, {1, 2.0}, {0, 3.0}, {1, 4.0}});
  const auto by_client = GroupByClient(trace);
  ASSERT_EQ(by_client.size(), 2u);
  EXPECT_EQ(by_client[0].size(), 2u);
  EXPECT_EQ(by_client[1].size(), 2u);
  // Streams preserve time order.
  EXPECT_LT(trace.requests[by_client[0][0]].time,
            trace.requests[by_client[0][1]].time);
}

TEST(SplitByGapTest, SplitsAtTimeout) {
  const Trace trace =
      MakeTrace({{0, 0.0}, {0, 2.0}, {0, 4.0}, {0, 100.0}, {0, 101.0}});
  const auto by_client = GroupByClient(trace);
  const auto segments = SplitByGap(trace, by_client[0], 5.0);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].size(), 3u);
  EXPECT_EQ(segments[1].size(), 2u);
}

TEST(SplitByGapTest, GapEqualToTimeoutSplits) {
  const Trace trace = MakeTrace({{0, 0.0}, {0, 5.0}});
  const auto by_client = GroupByClient(trace);
  EXPECT_EQ(SplitByGap(trace, by_client[0], 5.0).size(), 2u);
}

TEST(SplitByGapTest, InfiniteTimeoutSingleSegment) {
  const Trace trace = MakeTrace({{0, 0.0}, {0, 1e6}, {0, 2e6}});
  const auto by_client = GroupByClient(trace);
  EXPECT_EQ(SplitByGap(trace, by_client[0], kInfiniteTime).size(), 1u);
}

TEST(SplitByGapTest, ZeroTimeoutOnePerRequest) {
  const Trace trace = MakeTrace({{0, 0.0}, {0, 0.5}, {0, 1.0}});
  const auto by_client = GroupByClient(trace);
  EXPECT_EQ(SplitByGap(trace, by_client[0], 0.0).size(), 3u);
}

TEST(SplitByGapTest, EmptyStream) {
  const Trace trace = MakeTrace({{1, 0.0}});
  const auto by_client = GroupByClient(trace);
  EXPECT_TRUE(SplitByGap(trace, by_client[0], 5.0).empty());
}

TEST(CountSegmentsTest, AcrossClients) {
  const Trace trace =
      MakeTrace({{0, 0.0}, {0, 1.0}, {0, 50.0}, {1, 0.0}, {1, 100.0}});
  EXPECT_EQ(CountSegments(trace, 10.0), 4u);
  EXPECT_EQ(CountSegments(trace, kInfiniteTime), 2u);
}

TEST(CountSegmentsTest, StreamingOverloadMatchesBatch) {
  const Trace trace =
      MakeTrace({{0, 0.0}, {0, 1.0}, {0, 50.0}, {1, 0.0}, {1, 100.0},
                 {2, 3.0}, {0, 120.0}, {2, 4.0}, {2, 200.0}});
  for (const SimTime timeout : {0.0, 5.0, 10.0, kInfiniteTime}) {
    VectorCursor cursor(&trace);
    EXPECT_EQ(CountSegments(&cursor, timeout), CountSegments(trace, timeout))
        << "timeout " << timeout;
  }
}

TEST(CountSegmentsTest, StreamingEmpty) {
  Trace trace;
  trace.num_clients = 4;
  VectorCursor cursor(&trace);
  EXPECT_EQ(CountSegments(&cursor, 5.0), 0u);
}

}  // namespace
}  // namespace sds::trace

#include "trace/generator.h"

#include <map>
#include <gtest/gtest.h>

#include "trace/corpus.h"
#include "trace/link_graph.h"
#include "trace/sessionizer.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

struct Fixture {
  explicit Fixture(uint64_t seed = 42, uint32_t days = 7,
                   uint32_t clients = 100) {
    CorpusConfig cconfig;
    cconfig.pages_per_server = 60;
    cconfig.images_per_server = 90;
    cconfig.archives_per_server = 6;
    Rng rng(seed);
    corpus = GenerateCorpus(cconfig, &rng);
    graph = std::make_unique<LinkGraph>(&corpus, LinkGraphConfig{}, &rng);
    config.num_clients = clients;
    config.days = days;
    config.sessions_per_client_per_day = 0.8;
    generated = GenerateTrace(config, graph.get(), &rng);
  }

  Corpus corpus;
  std::unique_ptr<LinkGraph> graph;
  TraceGeneratorConfig config;
  GeneratedTrace generated;
};

TEST(GeneratorTest, ProducesRequests) {
  const Fixture f;
  EXPECT_GT(f.generated.trace.size(), 1000u);
  EXPECT_GT(f.generated.num_sessions, 100u);
}

TEST(GeneratorTest, RequestsSortedByTime) {
  const Fixture f;
  const auto& reqs = f.generated.trace.requests;
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_LE(reqs[i - 1].time, reqs[i].time);
  }
}

TEST(GeneratorTest, TimesWithinHorizon) {
  const Fixture f;
  for (const auto& r : f.generated.trace.requests) {
    EXPECT_GE(r.time, 0.0);
    EXPECT_LT(r.time, (f.config.days + 1) * kDay);
  }
}

TEST(GeneratorTest, DocumentRequestsReferenceCorpus) {
  const Fixture f;
  for (const auto& r : f.generated.trace.requests) {
    if (r.kind == RequestKind::kDocument || r.kind == RequestKind::kAlias) {
      ASSERT_LT(r.doc, f.corpus.size());
      EXPECT_EQ(r.bytes, f.corpus.doc(r.doc).size_bytes);
      EXPECT_EQ(r.server, f.corpus.doc(r.doc).server);
    } else {
      EXPECT_EQ(r.doc, kInvalidDocument);
    }
  }
}

TEST(GeneratorTest, ClientLocalityConsistent) {
  const Fixture f;
  for (const auto& r : f.generated.trace.requests) {
    EXPECT_EQ(r.remote_client, f.generated.client_is_remote[r.client]);
  }
}

TEST(GeneratorTest, Deterministic) {
  const Fixture a(7), b(7);
  ASSERT_EQ(a.generated.trace.size(), b.generated.trace.size());
  for (size_t i = 0; i < a.generated.trace.size(); ++i) {
    EXPECT_EQ(a.generated.trace.requests[i].doc,
              b.generated.trace.requests[i].doc);
    EXPECT_EQ(a.generated.trace.requests[i].time,
              b.generated.trace.requests[i].time);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Fixture a(1), b(2);
  EXPECT_NE(a.generated.trace.size(), b.generated.trace.size());
}

TEST(GeneratorTest, ContainsNoise) {
  const Fixture f;
  size_t not_found = 0, scripts = 0, aliases = 0;
  for (const auto& r : f.generated.trace.requests) {
    if (r.kind == RequestKind::kNotFound) ++not_found;
    if (r.kind == RequestKind::kScript) ++scripts;
    if (r.kind == RequestKind::kAlias) ++aliases;
  }
  EXPECT_GT(not_found, 0u);
  EXPECT_GT(scripts, 0u);
  EXPECT_GT(aliases, 0u);
}

TEST(GeneratorTest, UpdatesRecordedWithinHorizon) {
  const Fixture f;
  EXPECT_GT(f.generated.updates.size(), 0u);
  for (const auto& u : f.generated.updates) {
    EXPECT_LT(u.day, f.config.days);
    EXPECT_LT(u.doc, f.corpus.size());
  }
}

TEST(GeneratorTest, BrowserCacheSuppressesRepeats) {
  // With an infinite browser cache and no restarts, each client requests a
  // document at most once (plus rare forced reloads).
  CorpusConfig cconfig;
  cconfig.pages_per_server = 40;
  cconfig.images_per_server = 60;
  cconfig.archives_per_server = 4;
  Rng rng(3);
  const Corpus corpus = GenerateCorpus(cconfig, &rng);
  LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
  TraceGeneratorConfig config;
  config.num_clients = 50;
  config.days = 10;
  config.sessions_per_client_per_day = 1.0;
  config.browser_cache_bytes = 1ull << 40;
  config.browser_restart_probability = 0.0;
  config.forced_reload_rate = 0.0;
  const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);

  std::map<std::pair<ClientId, DocumentId>, int> seen;
  for (const auto& r : generated.trace.requests) {
    if (r.kind == RequestKind::kDocument || r.kind == RequestKind::kAlias) {
      const auto key = std::make_pair(r.client, r.doc);
      EXPECT_EQ(++seen[key], 1)
          << "client " << r.client << " refetched doc " << r.doc;
    }
  }
}

TEST(GeneratorTest, NoBrowserCacheYieldsRepeats) {
  CorpusConfig cconfig;
  cconfig.pages_per_server = 20;
  cconfig.images_per_server = 30;
  cconfig.archives_per_server = 2;
  Rng rng(4);
  const Corpus corpus = GenerateCorpus(cconfig, &rng);
  LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
  TraceGeneratorConfig config;
  config.num_clients = 20;
  config.days = 10;
  config.sessions_per_client_per_day = 2.0;
  config.browser_cache_bytes = 0;
  const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);

  std::map<std::pair<ClientId, DocumentId>, int> seen;
  int max_count = 0;
  for (const auto& r : generated.trace.requests) {
    if (r.kind == RequestKind::kDocument) {
      const auto key = std::make_pair(r.client, r.doc);
      max_count = std::max(max_count, ++seen[key]);
    }
  }
  EXPECT_GT(max_count, 1);
}

TEST(GeneratorTest, MultiServerWeightsSkewVolume) {
  CorpusConfig cconfig;
  cconfig.num_servers = 3;
  cconfig.pages_per_server = 30;
  cconfig.images_per_server = 40;
  cconfig.archives_per_server = 3;
  Rng rng(5);
  const Corpus corpus = GenerateCorpus(cconfig, &rng);
  LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
  TraceGeneratorConfig config;
  config.num_clients = 200;
  config.days = 10;
  config.sessions_per_client_per_day = 0.5;
  config.server_weights = {8.0, 1.0, 1.0};
  const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);

  std::vector<size_t> per_server(3, 0);
  for (const auto& r : generated.trace.requests) ++per_server[r.server];
  EXPECT_GT(per_server[0], 3 * per_server[1]);
  EXPECT_GT(per_server[0], 3 * per_server[2]);
}

TEST(GeneratorTest, DiurnalConcentratesDaytime) {
  const Fixture f;
  size_t day_hours = 0, night_hours = 0;
  for (const auto& r : f.generated.trace.requests) {
    const double hour = TimeOfDay(r.time) / kHour;
    if (hour >= 9.0 && hour < 21.0) {
      ++day_hours;
    } else {
      ++night_hours;
    }
  }
  EXPECT_GT(day_hours, 2 * night_hours);
}

TEST(GeneratorTest, StridesExistWithinSessions) {
  const Fixture f;
  // With think times of a few seconds, a 5-second stride timeout must
  // produce strides spanning multiple requests.
  const auto by_client = GroupByClient(f.generated.trace);
  size_t multi = 0;
  for (const auto& stream : by_client) {
    if (stream.empty()) continue;
    for (const auto& seg : SplitByGap(f.generated.trace, stream, 5.0)) {
      if (seg.size() >= 2) ++multi;
    }
  }
  EXPECT_GT(multi, 50u);
}

}  // namespace
}  // namespace sds::trace

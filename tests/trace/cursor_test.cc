#include "trace/cursor.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/clf.h"
#include "trace/corpus.h"
#include "trace/filter.h"
#include "trace/generator.h"
#include "trace/link_graph.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

// Exact (bit-identical) request equality: the streaming backends promise
// the *same* sequence as their batch counterparts, not an approximation.
void ExpectSameRequests(const std::vector<Request>& a,
                        const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].time, b[i].time) << i;
    ASSERT_EQ(a[i].client, b[i].client) << i;
    ASSERT_EQ(a[i].doc, b[i].doc) << i;
    ASSERT_EQ(a[i].server, b[i].server) << i;
    ASSERT_EQ(a[i].bytes, b[i].bytes) << i;
    ASSERT_EQ(a[i].kind, b[i].kind) << i;
    ASSERT_EQ(a[i].remote_client, b[i].remote_client) << i;
  }
}

void ExpectSameTrace(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.num_clients, b.num_clients);
  EXPECT_EQ(a.num_servers, b.num_servers);
  ExpectSameRequests(a.requests, b.requests);
}

// ---------------------------------------------------------------------------
// GeneratorCursor vs GenerateTrace

struct GenFixture {
  explicit GenFixture(uint64_t seed, TraceGeneratorConfig cfg) : config(cfg) {
    CorpusConfig cconfig;
    cconfig.pages_per_server = 40;
    cconfig.images_per_server = 60;
    cconfig.archives_per_server = 4;
    Rng rng(seed);
    corpus = GenerateCorpus(cconfig, &rng);
    graph_rng = rng;  // Graph construction state, reused by the factory.
    LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
    trace_rng = rng;  // Trace stream state (post graph construction).
    batch = GenerateTrace(config, &graph, &rng);
  }

  std::function<LinkGraph()> GraphFactory() const {
    return [this]() {
      Rng rng = graph_rng;
      return LinkGraph(&corpus, LinkGraphConfig{}, &rng);
    };
  }

  GeneratorCursor MakeCursor() const {
    return GeneratorCursor(config, GraphFactory(), trace_rng);
  }

  TraceGeneratorConfig config;
  Corpus corpus;
  Rng graph_rng{0};
  Rng trace_rng{0};
  GeneratedTrace batch;
};

TraceGeneratorConfig SmallTraceConfig(uint32_t days) {
  TraceGeneratorConfig config;
  config.num_clients = 80;
  config.days = days;
  config.sessions_per_client_per_day = 0.8;
  return config;
}

void ExpectCursorMatchesBatch(const GenFixture& f) {
  GeneratorCursor cursor = f.MakeCursor();
  const Trace streamed = Materialize(&cursor);
  ExpectSameTrace(streamed, f.batch.trace);
  EXPECT_EQ(cursor.num_sessions(), f.batch.num_sessions);
  EXPECT_EQ(cursor.client_is_remote(), f.batch.client_is_remote);
  ASSERT_EQ(cursor.updates().size(), f.batch.updates.size());
  for (size_t i = 0; i < f.batch.updates.size(); ++i) {
    EXPECT_EQ(cursor.updates()[i].day, f.batch.updates[i].day);
    EXPECT_EQ(cursor.updates()[i].doc, f.batch.updates[i].doc);
  }
}

TEST(GeneratorCursorTest, MatchesBatchBitForBit) {
  ExpectCursorMatchesBatch(GenFixture(42, SmallTraceConfig(7)));
}

TEST(GeneratorCursorTest, MatchesBatchWithoutBrowserCache) {
  TraceGeneratorConfig config = SmallTraceConfig(7);
  config.browser_cache_bytes = 0;
  ExpectCursorMatchesBatch(GenFixture(7, config));
}

TEST(GeneratorCursorTest, MatchesBatchSingleDay) {
  ExpectCursorMatchesBatch(GenFixture(3, SmallTraceConfig(1)));
}

TEST(GeneratorCursorTest, StreamIsTimeOrderedAcrossChunks) {
  const GenFixture f(42, SmallTraceConfig(7));
  GeneratorCursor cursor = f.MakeCursor();
  SimTime last = 0.0;
  size_t total = 0;
  for (auto chunk = cursor.NextChunk(); !chunk.empty();
       chunk = cursor.NextChunk()) {
    for (const Request& r : chunk) {
      EXPECT_LE(last, r.time);
      last = r.time;
      ++total;
    }
  }
  EXPECT_EQ(total, f.batch.trace.size());
}

TEST(GeneratorCursorTest, RewindReproducesStream) {
  const GenFixture f(42, SmallTraceConfig(5));
  GeneratorCursor cursor = f.MakeCursor();
  const Trace first = Materialize(&cursor);
  cursor.Rewind();
  const Trace second = Materialize(&cursor);
  ExpectSameTrace(first, second);
  EXPECT_EQ(cursor.num_sessions(), f.batch.num_sessions);
}

// ---------------------------------------------------------------------------
// ClfCursor vs ReadClfFile

class ClfCursorTest : public ::testing::Test {
 protected:
  ClfCursorTest() {
    CorpusConfig cconfig;
    cconfig.pages_per_server = 30;
    cconfig.images_per_server = 40;
    cconfig.archives_per_server = 3;
    Rng rng(11);
    corpus_ = GenerateCorpus(cconfig, &rng);
    LinkGraph graph(&corpus_, LinkGraphConfig{}, &rng);
    TraceGeneratorConfig tconfig;
    tconfig.num_clients = 40;
    tconfig.days = 3;
    tconfig.sessions_per_client_per_day = 1.0;
    trace_ = GenerateTrace(tconfig, &graph, &rng).trace;
  }

  ~ClfCursorTest() override {
    for (const std::string& path : temp_files_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    temp_files_.push_back(path);
    return path;
  }

  std::string WriteTraceFile(const std::string& name) {
    const std::string path = TempPath(name);
    EXPECT_TRUE(WriteClfFile(path, trace_, corpus_).ok());
    return path;
  }

  // Streams the file through a cursor and checks requests, metadata, and
  // line accounting against ReadClfFile with the same options.
  void ExpectCursorMatchesFile(const std::string& path,
                               const ClfReadOptions& options,
                               size_t reorder_window = 65536) {
    ClfReadStats batch_stats;
    const auto batch = ReadClfFile(path, corpus_, options, &batch_stats);
    ASSERT_TRUE(batch.ok());
    ClfCursor cursor(path, &corpus_, options, reorder_window);
    const Trace streamed = Materialize(&cursor);
    ASSERT_TRUE(cursor.status().ok()) << cursor.status().message();
    ExpectSameRequests(streamed.requests, batch.value().requests);
    EXPECT_EQ(cursor.num_clients(), batch.value().num_clients);
    EXPECT_EQ(cursor.num_servers(), batch.value().num_servers);
    EXPECT_EQ(cursor.stats().lines, batch_stats.lines);
    EXPECT_EQ(cursor.stats().skipped_lines, batch_stats.skipped_lines);
  }

  Corpus corpus_;
  Trace trace_;
  std::vector<std::string> temp_files_;
};

TEST_F(ClfCursorTest, MatchesBatchReaderBitForBit) {
  const std::string path = WriteTraceFile("sds_cursor_roundtrip.log");
  ExpectCursorMatchesFile(path, ClfReadOptions{});
}

TEST_F(ClfCursorTest, SmallReorderWindowStillMatchesSortedFile) {
  const std::string path = WriteTraceFile("sds_cursor_window.log");
  ExpectCursorMatchesFile(path, ClfReadOptions{}, /*reorder_window=*/4);
}

TEST_F(ClfCursorTest, LenientSkipAccountingMatches) {
  const std::string path = WriteTraceFile("sds_cursor_lenient.log");
  {
    std::ofstream append(path, std::ios::app);
    append << "garbage line one\n\n"
           << "h1.cs.bu.edu - - [01/Jan/1995] \"GET /a HTTP/1.0\" 200 5\n"
           << "bad-host - - [01/Jan/1995:00:00:00 +0000] \"GET /a HTTP/1.0\""
           << " 200 5\n";
  }
  ClfReadOptions options;
  options.lenient = true;
  ExpectCursorMatchesFile(path, options);
}

TEST_F(ClfCursorTest, StrictErrorMatchesBatchReaderExactly) {
  const std::string path = WriteTraceFile("sds_cursor_strict.log");
  {
    std::ofstream append(path, std::ios::app);
    append << "truncated garbage\n";
  }
  const auto batch = ReadClfFile(path, corpus_);
  ASSERT_FALSE(batch.ok());
  ClfCursor cursor(path, &corpus_, ClfReadOptions{});
  while (!cursor.NextChunk().empty()) {
  }
  ASSERT_FALSE(cursor.status().ok());
  EXPECT_EQ(cursor.status().code(), batch.status().code());
  EXPECT_EQ(cursor.status().message(), batch.status().message());
}

TEST_F(ClfCursorTest, TruncatedFinalLineMatchesBatchReader) {
  // A file whose final line has no trailing newline: std::getline still
  // yields it, and so must the mmap scanner.
  const std::string path = TempPath("sds_cursor_truncated.log");
  {
    std::ofstream out(path);
    const auto lines = TraceToClf(trace_, corpus_);
    ASSERT_GE(lines.size(), 2u);
    out << lines[0] << '\n' << lines[1];  // no trailing '\n'
  }
  ExpectCursorMatchesFile(path, ClfReadOptions{});
}

TEST_F(ClfCursorTest, TruncatedGarbageFinalLineLenient) {
  const std::string path = TempPath("sds_cursor_truncated_garbage.log");
  {
    std::ofstream out(path);
    const auto lines = TraceToClf(trace_, corpus_);
    ASSERT_GE(lines.size(), 2u);
    // Final line cut mid-timestamp, as a crashed logger would leave it.
    out << lines[0] << '\n' << lines[1].substr(0, lines[1].size() / 2);
  }
  ClfReadOptions options;
  options.lenient = true;
  ExpectCursorMatchesFile(path, options);
}

TEST_F(ClfCursorTest, EmptyFileMatchesBatchReader) {
  const std::string path = TempPath("sds_cursor_empty.log");
  { std::ofstream out(path); }
  ExpectCursorMatchesFile(path, ClfReadOptions{});
  ClfCursor cursor(path, &corpus_, ClfReadOptions{});
  EXPECT_TRUE(cursor.NextChunk().empty());
  EXPECT_EQ(cursor.stats().lines, 0u);
}

TEST_F(ClfCursorTest, BlankLinesAreNotCounted) {
  const std::string path = TempPath("sds_cursor_blanks.log");
  {
    std::ofstream out(path);
    const auto lines = TraceToClf(trace_, corpus_);
    ASSERT_GE(lines.size(), 2u);
    out << "\n  \n" << lines[0] << "\n\n" << lines[1] << "\n\n";
  }
  ExpectCursorMatchesFile(path, ClfReadOptions{});
}

TEST_F(ClfCursorTest, MissingFileReportsSameError) {
  const auto batch = ReadClfFile("/no/such/file.log", corpus_);
  ASSERT_FALSE(batch.ok());
  ClfCursor cursor("/no/such/file.log", &corpus_, ClfReadOptions{});
  EXPECT_TRUE(cursor.NextChunk().empty());
  ASSERT_FALSE(cursor.status().ok());
  EXPECT_EQ(cursor.status().code(), batch.status().code());
  EXPECT_EQ(cursor.status().message(), batch.status().message());
}

TEST_F(ClfCursorTest, RewindReproducesStream) {
  const std::string path = WriteTraceFile("sds_cursor_rewind.log");
  ClfCursor cursor(path, &corpus_, ClfReadOptions{});
  const Trace first = Materialize(&cursor);
  cursor.Rewind();
  const Trace second = Materialize(&cursor);
  ExpectSameRequests(first.requests, second.requests);
  EXPECT_EQ(first.num_clients, second.num_clients);
}

// ---------------------------------------------------------------------------
// FilteringCursor vs FilterTrace

TEST(FilteringCursorTest, MatchesFilterTrace) {
  const GenFixture f(42, SmallTraceConfig(5));
  const Trace clean = FilterTrace(f.batch.trace);
  FilteringCursor cursor(std::make_unique<GeneratorCursor>(
      f.config, f.GraphFactory(), f.trace_rng));
  const Trace streamed = Materialize(&cursor);
  ExpectSameTrace(streamed, clean);
  EXPECT_TRUE(cursor.status().ok());
}

// ---------------------------------------------------------------------------
// VectorCursor / Materialize

TEST(VectorCursorTest, BorrowingRoundTrip) {
  const GenFixture f(9, SmallTraceConfig(2));
  VectorCursor cursor(&f.batch.trace);
  const Trace round = Materialize(&cursor);
  ExpectSameTrace(round, f.batch.trace);
  // Exhausted until rewound.
  EXPECT_TRUE(cursor.NextChunk().empty());
  cursor.Rewind();
  EXPECT_EQ(cursor.NextChunk().size(), f.batch.trace.size());
}

TEST(VectorCursorTest, OwningRoundTrip) {
  const GenFixture f(9, SmallTraceConfig(2));
  Trace copy = f.batch.trace;
  VectorCursor cursor(std::move(copy));
  const Trace round = Materialize(&cursor);
  ExpectSameTrace(round, f.batch.trace);
}

}  // namespace
}  // namespace sds::trace

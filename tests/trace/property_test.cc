/// Property tests: generator invariants across its configuration space
/// (browser-cache model on/off, locality knobs, scale), asserting the
/// structural properties every downstream analysis assumes.

#include <map>

#include <gtest/gtest.h>

#include "trace/corpus.h"
#include "trace/filter.h"
#include "trace/generator.h"
#include "trace/link_graph.h"
#include "trace/sessionizer.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

class GeneratorSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t /*seed*/, bool /*browser_cache*/,
                     double /*remote_fraction*/>> {};

TEST_P(GeneratorSweepTest, StructuralInvariants) {
  const auto [seed, browser_cache, remote_fraction] = GetParam();
  CorpusConfig cconfig;
  cconfig.pages_per_server = 50;
  cconfig.images_per_server = 70;
  cconfig.archives_per_server = 5;
  Rng rng(seed);
  const Corpus corpus = GenerateCorpus(cconfig, &rng);
  LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
  TraceGeneratorConfig config;
  config.num_clients = 80;
  config.days = 6;
  config.sessions_per_client_per_day = 1.0;
  config.remote_client_fraction = remote_fraction;
  config.browser_cache_bytes = browser_cache ? 2 * 1024 * 1024 : 0;
  const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);
  const Trace& trace = generated.trace;
  ASSERT_GT(trace.size(), 100u);

  // Time-ordering and horizon.
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& r = trace.requests[i];
    if (i > 0) {
      EXPECT_GE(r.time, trace.requests[i - 1].time);
    }
    EXPECT_GE(r.time, 0.0);
    EXPECT_LT(r.time, (config.days + 1) * kDay);
    EXPECT_LT(r.client, config.num_clients);
    // Kind/doc coherence.
    if (r.kind == RequestKind::kDocument || r.kind == RequestKind::kAlias) {
      ASSERT_LT(r.doc, corpus.size());
      EXPECT_EQ(r.bytes, corpus.doc(r.doc).size_bytes);
    } else {
      EXPECT_EQ(r.doc, kInvalidDocument);
    }
    EXPECT_EQ(r.remote_client, generated.client_is_remote[r.client]);
  }

  // Filtering keeps exactly the document accesses.
  FilterStats stats;
  const Trace clean = FilterTrace(trace, &stats);
  EXPECT_EQ(stats.kept + stats.dropped_not_found + stats.dropped_script,
            trace.size());
  for (const auto& r : clean.requests) {
    EXPECT_EQ(r.kind, RequestKind::kDocument);
  }

  // Remote request share tracks the configured client mix (locals browse
  // more, so the remote share sits below the client fraction).
  size_t remote = 0;
  for (const auto& r : clean.requests) {
    if (r.remote_client) ++remote;
  }
  const double share =
      static_cast<double>(remote) / static_cast<double>(clean.size());
  if (remote_fraction == 0.0) {
    EXPECT_EQ(remote, 0u);
  } else {
    // Zipf-skewed client activity plus the 3x local multiplier makes the
    // remote *request* share far smaller than the client fraction; it just
    // has to be present and bounded.
    EXPECT_GT(share, 0.01);
    EXPECT_LT(share, remote_fraction + 0.15);
  }

  // Sessions exist and strides cluster requests.
  EXPECT_GT(CountSegments(clean, 30 * kMinute), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorSweepTest,
    ::testing::Combine(::testing::Values(1ull, 7ull, 99ull),
                       ::testing::Bool(),
                       ::testing::Values(0.0, 0.5, 1.0)));

TEST(GeneratorKnobTest, AbortRateThinsEmbeddedFetches) {
  CorpusConfig cconfig;
  cconfig.pages_per_server = 40;
  cconfig.images_per_server = 60;
  cconfig.archives_per_server = 0;
  auto count_images = [&](double abort_rate) {
    Rng rng(5);
    const Corpus corpus = GenerateCorpus(cconfig, &rng);
    LinkGraphConfig lconfig;
    lconfig.mean_embedded_per_page = 3.0;
    LinkGraph graph(&corpus, lconfig, &rng);
    TraceGeneratorConfig config;
    config.num_clients = 60;
    config.days = 4;
    config.sessions_per_client_per_day = 1.0;
    config.browser_cache_bytes = 0;  // isolate the abort effect
    config.abort_rate = abort_rate;
    const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);
    size_t images = 0;
    for (const auto& r : generated.trace.requests) {
      if (r.doc != kInvalidDocument &&
          corpus.doc(r.doc).kind == DocumentKind::kImage) {
        ++images;
      }
    }
    return images;
  };
  EXPECT_LT(count_images(0.5), count_images(0.0));
}

TEST(GeneratorKnobTest, LocalActivityMultiplierShiftsVolume) {
  CorpusConfig cconfig;
  cconfig.pages_per_server = 40;
  cconfig.images_per_server = 50;
  cconfig.archives_per_server = 3;
  auto local_share = [&](double multiplier) {
    Rng rng(9);
    const Corpus corpus = GenerateCorpus(cconfig, &rng);
    LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
    TraceGeneratorConfig config;
    config.num_clients = 150;
    config.days = 5;
    config.sessions_per_client_per_day = 0.8;
    config.remote_client_fraction = 0.5;
    config.local_activity_multiplier = multiplier;
    const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);
    size_t local = 0;
    for (const auto& r : generated.trace.requests) {
      if (!r.remote_client) ++local;
    }
    return static_cast<double>(local) /
           static_cast<double>(generated.trace.size());
  };
  EXPECT_GT(local_share(4.0), local_share(1.0) + 0.1);
}

TEST(GeneratorKnobTest, HigherRestartProbabilityMoreRefetches) {
  CorpusConfig cconfig;
  cconfig.pages_per_server = 30;
  cconfig.images_per_server = 40;
  cconfig.archives_per_server = 2;
  auto repeats = [&](double restart) {
    Rng rng(11);
    const Corpus corpus = GenerateCorpus(cconfig, &rng);
    LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
    TraceGeneratorConfig config;
    config.num_clients = 40;
    config.days = 8;
    config.sessions_per_client_per_day = 1.5;
    config.browser_restart_probability = restart;
    config.forced_reload_rate = 0.0;
    const GeneratedTrace generated = GenerateTrace(config, &graph, &rng);
    std::map<std::pair<ClientId, DocumentId>, int> seen;
    size_t repeats = 0;
    for (const auto& r : generated.trace.requests) {
      if (r.kind != RequestKind::kDocument) continue;
      const auto key = std::make_pair(r.client, r.doc);
      if (++seen[key] > 1) ++repeats;
    }
    return repeats;
  };
  EXPECT_GT(repeats(0.9), repeats(0.0));
}

}  // namespace
}  // namespace sds::trace

#include "trace/corpus.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sds::trace {
namespace {

CorpusConfig TinyConfig() {
  CorpusConfig config;
  config.pages_per_server = 40;
  config.images_per_server = 60;
  config.archives_per_server = 5;
  return config;
}

TEST(CorpusTest, GeneratesExpectedCounts) {
  Rng rng(1);
  const Corpus corpus = GenerateCorpus(TinyConfig(), &rng);
  EXPECT_EQ(corpus.size(), 105u);
  EXPECT_EQ(corpus.num_servers(), 1u);
  EXPECT_EQ(corpus.server_docs(0).size(), 105u);
}

TEST(CorpusTest, IdsAreDense) {
  Rng rng(2);
  const Corpus corpus = GenerateCorpus(TinyConfig(), &rng);
  for (DocumentId id = 0; id < corpus.size(); ++id) {
    EXPECT_EQ(corpus.doc(id).id, id);
  }
}

TEST(CorpusTest, SizesArePositiveAndBounded) {
  Rng rng(3);
  CorpusConfig config = TinyConfig();
  const Corpus corpus = GenerateCorpus(config, &rng);
  for (const auto& d : corpus.docs()) {
    EXPECT_GT(d.size_bytes, 0u);
    if (d.kind == DocumentKind::kArchive) {
      EXPECT_GE(d.size_bytes, static_cast<uint64_t>(config.archive_size_min));
      EXPECT_LE(d.size_bytes, static_cast<uint64_t>(config.archive_size_max));
    }
  }
}

TEST(CorpusTest, FindByPathRoundTrip) {
  Rng rng(4);
  const Corpus corpus = GenerateCorpus(TinyConfig(), &rng);
  for (const auto& d : corpus.docs()) {
    const auto found = corpus.FindByPath(d.server, d.path);
    ASSERT_TRUE(found.ok()) << d.path;
    EXPECT_EQ(found.value(), d.id);
  }
  EXPECT_FALSE(corpus.FindByPath(0, "/nope.html").ok());
}

TEST(CorpusTest, MultiServerPartition) {
  Rng rng(5);
  CorpusConfig config = TinyConfig();
  config.num_servers = 3;
  const Corpus corpus = GenerateCorpus(config, &rng);
  EXPECT_EQ(corpus.num_servers(), 3u);
  size_t total = 0;
  for (ServerId s = 0; s < 3; ++s) {
    for (const DocumentId id : corpus.server_docs(s)) {
      EXPECT_EQ(corpus.doc(id).server, s);
    }
    total += corpus.server_docs(s).size();
  }
  EXPECT_EQ(total, corpus.size());
}

TEST(CorpusTest, TotalBytesConsistent) {
  Rng rng(6);
  CorpusConfig config = TinyConfig();
  config.num_servers = 2;
  const Corpus corpus = GenerateCorpus(config, &rng);
  EXPECT_EQ(corpus.TotalBytes(), corpus.ServerBytes(0) + corpus.ServerBytes(1));
}

TEST(CorpusTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const Corpus ca = GenerateCorpus(TinyConfig(), &a);
  const Corpus cb = GenerateCorpus(TinyConfig(), &b);
  ASSERT_EQ(ca.size(), cb.size());
  for (DocumentId id = 0; id < ca.size(); ++id) {
    EXPECT_EQ(ca.doc(id).size_bytes, cb.doc(id).size_bytes);
    EXPECT_EQ(ca.doc(id).audience, cb.doc(id).audience);
  }
}

TEST(CorpusTest, AudienceMixRoughlyMatchesConfig) {
  Rng rng(8);
  CorpusConfig config;
  config.pages_per_server = 2000;
  config.images_per_server = 0;
  config.archives_per_server = 0;
  const Corpus corpus = GenerateCorpus(config, &rng);
  int remote = 0, local = 0, global = 0;
  for (const auto& d : corpus.docs()) {
    switch (d.audience) {
      case AudienceClass::kRemote:
        ++remote;
        break;
      case AudienceClass::kLocal:
        ++local;
        break;
      case AudienceClass::kGlobal:
        ++global;
        break;
    }
  }
  EXPECT_NEAR(remote / 2000.0, config.remote_fraction, 0.03);
  EXPECT_NEAR(local / 2000.0, config.local_fraction, 0.04);
}

TEST(CorpusTest, MutableUpdateRatesClassConditional) {
  Rng rng(9);
  CorpusConfig config;
  config.pages_per_server = 3000;
  config.images_per_server = 0;
  config.archives_per_server = 0;
  const Corpus corpus = GenerateCorpus(config, &rng);
  double local_rate = 0.0, other_rate = 0.0;
  int local_n = 0, other_n = 0;
  for (const auto& d : corpus.docs()) {
    if (d.audience == AudienceClass::kLocal) {
      local_rate += d.update_probability_per_day;
      ++local_n;
    } else {
      other_rate += d.update_probability_per_day;
      ++other_n;
    }
  }
  // Locally oriented documents update much more often on average (paper:
  // ~2%/day vs <0.5%/day).
  EXPECT_GT(local_rate / local_n, 2.0 * other_rate / other_n);
}

TEST(CorpusTest, KindAndClassNames) {
  EXPECT_STREQ(DocumentKindToString(DocumentKind::kPage), "page");
  EXPECT_STREQ(DocumentKindToString(DocumentKind::kImage), "image");
  EXPECT_STREQ(DocumentKindToString(DocumentKind::kArchive), "archive");
  EXPECT_STREQ(AudienceClassToString(AudienceClass::kRemote), "remote");
}

}  // namespace
}  // namespace sds::trace

#include "trace/clf.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "trace/corpus.h"
#include "trace/filter.h"
#include "trace/generator.h"
#include "trace/link_graph.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

TEST(ClfTimeTest, EpochFormatsAsJan1995) {
  EXPECT_EQ(FormatClfTime(0.0), "[01/Jan/1995:00:00:00 +0000]");
}

TEST(ClfTimeTest, FormatsDayRollovers) {
  EXPECT_EQ(FormatClfTime(86400.0 + 3661.0), "[02/Jan/1995:01:01:01 +0000]");
  // 31 days of January.
  EXPECT_EQ(FormatClfTime(31.0 * 86400.0), "[01/Feb/1995:00:00:00 +0000]");
  // 1995 is not a leap year: Feb has 28 days.
  EXPECT_EQ(FormatClfTime((31.0 + 28.0) * 86400.0),
            "[01/Mar/1995:00:00:00 +0000]");
}

TEST(ClfTimeTest, ParseRoundTrip) {
  for (const double t : {0.0, 59.0, 86399.0, 86400.0, 123456.0, 7776000.0}) {
    const auto parsed = ParseClfTime(FormatClfTime(t));
    ASSERT_TRUE(parsed.ok()) << FormatClfTime(t);
    EXPECT_DOUBLE_EQ(parsed.value(), std::floor(t));
  }
}

TEST(ClfTimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseClfTime("01/Jan/1995:00:00:00").ok());  // no brackets
  EXPECT_FALSE(ParseClfTime("[01/Foo/1995:00:00:00 +0000]").ok());
  EXPECT_FALSE(ParseClfTime("[bad]").ok());
}

TEST(ClfLineTest, FormatAndParse) {
  ClfRecord rec;
  rec.host = "h12.org3.example.com";
  rec.time = 3600.0;
  rec.method = "GET";
  rec.path = "/docs/0001.html";
  rec.status = 200;
  rec.bytes = 4321;
  const std::string line = FormatClfLine(rec);
  EXPECT_EQ(line,
            "h12.org3.example.com - - [01/Jan/1995:01:00:00 +0000] "
            "\"GET /docs/0001.html HTTP/1.0\" 200 4321");
  const auto parsed = ParseClfLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().host, rec.host);
  EXPECT_EQ(parsed.value().path, rec.path);
  EXPECT_EQ(parsed.value().status, 200);
  EXPECT_EQ(parsed.value().bytes, 4321u);
  EXPECT_DOUBLE_EQ(parsed.value().time, 3600.0);
}

TEST(ClfLineTest, ParseDashBytes) {
  const auto parsed = ParseClfLine(
      "h1.cs.bu.edu - - [01/Jan/1995:00:00:00 +0000] \"GET /x HTTP/1.0\" "
      "404 -");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().bytes, 0u);
}

TEST(ClfLineTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseClfLine("nonsense").ok());
  EXPECT_FALSE(ParseClfLine("host - - [01/Jan/1995:00:00:00 +0000] 200 5").ok());
}

class ClfRoundTripTest : public ::testing::Test {
 protected:
  ClfRoundTripTest() {
    CorpusConfig cconfig;
    cconfig.pages_per_server = 30;
    cconfig.images_per_server = 40;
    cconfig.archives_per_server = 3;
    Rng rng(11);
    corpus_ = GenerateCorpus(cconfig, &rng);
    LinkGraph graph(&corpus_, LinkGraphConfig{}, &rng);
    TraceGeneratorConfig tconfig;
    tconfig.num_clients = 40;
    tconfig.days = 3;
    tconfig.sessions_per_client_per_day = 1.0;
    trace_ = GenerateTrace(tconfig, &graph, &rng).trace;
  }

  Corpus corpus_;
  Trace trace_;
};

TEST_F(ClfRoundTripTest, TraceToClfToTracePreservesCleanRequests) {
  const auto lines = TraceToClf(trace_, corpus_);
  ASSERT_EQ(lines.size(), trace_.size());
  const auto round = ClfToTrace(lines, corpus_);
  ASSERT_TRUE(round.ok());
  const Trace& rt = round.value();
  ASSERT_EQ(rt.size(), trace_.size());

  // After preprocessing, both traces must be identical request-for-request
  // (CLF timestamps have 1-second resolution, so compare with tolerance).
  const Trace a = FilterTrace(trace_);
  const Trace b = FilterTrace(rt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.requests[i].doc, b.requests[i].doc) << i;
    EXPECT_EQ(a.requests[i].client, b.requests[i].client) << i;
    EXPECT_EQ(a.requests[i].remote_client, b.requests[i].remote_client) << i;
    EXPECT_NEAR(a.requests[i].time, b.requests[i].time, 1.0) << i;
    EXPECT_EQ(a.requests[i].bytes, b.requests[i].bytes) << i;
  }
}

TEST_F(ClfRoundTripTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sds_clf_test.log";
  ASSERT_TRUE(WriteClfFile(path, trace_, corpus_).ok());
  const auto read = ReadClfFile(path, corpus_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), trace_.size());
  std::remove(path.c_str());
}

TEST_F(ClfRoundTripTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadClfFile("/no/such/file.log", corpus_).ok());
}

TEST_F(ClfRoundTripTest, UnknownPathsBecomeNotFound) {
  const std::vector<std::string> lines = {
      "h1.cs.bu.edu - - [01/Jan/1995:00:00:00 +0000] "
      "\"GET /definitely/missing.html HTTP/1.0\" 200 100"};
  const auto round = ClfToTrace(lines, corpus_);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().size(), 1u);
  EXPECT_EQ(round.value().requests[0].kind, RequestKind::kNotFound);
}

TEST_F(ClfRoundTripTest, StrictModeNamesOffendingLine) {
  std::vector<std::string> lines = TraceToClf(trace_, corpus_);
  ASSERT_GE(lines.size(), 3u);
  lines[2] = "truncated garbage";
  const auto strict = ClfToTrace(lines, corpus_);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kParseError);
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos)
      << strict.status().message();
}

TEST_F(ClfRoundTripTest, LenientModeSkipsAndCountsMalformedLines) {
  std::vector<std::string> lines = TraceToClf(trace_, corpus_);
  const size_t total = lines.size();
  ASSERT_GE(total, 5u);
  lines[0] = "truncated garbage";                // no timestamp
  lines[3] = "h1.cs.bu.edu - - [01/Jan/1995] "   // bad timestamp
             "\"GET /a HTTP/1.0\" 200 5";
  lines[4] = "bad-host - - [01/Jan/1995:00:00:00 +0000] "  // bad host
             "\"GET /a HTTP/1.0\" 200 5";
  lines.push_back("");  // blank lines are not counted at all

  ClfReadOptions options;
  options.lenient = true;
  ClfReadStats stats;
  const auto round = ClfToTrace(lines, corpus_, options, &stats);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(stats.lines, total);
  EXPECT_EQ(stats.skipped_lines, 3u);
  EXPECT_EQ(round.value().size(), total - 3);
}

TEST_F(ClfRoundTripTest, LenientFileReadReportsPerFileSkipCount) {
  const std::string path = ::testing::TempDir() + "/sds_clf_lenient_test.log";
  ASSERT_TRUE(WriteClfFile(path, trace_, corpus_).ok());
  {
    std::ofstream append(path, std::ios::app);
    append << "garbage line one\n\ngarbage line two\n";
  }
  ClfReadOptions options;
  options.lenient = true;
  ClfReadStats stats;
  const auto read = ReadClfFile(path, corpus_, options, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.skipped_lines, 2u);
  EXPECT_EQ(stats.lines, trace_.size() + 2);
  EXPECT_EQ(read.value().size(), trace_.size());

  // The same file fails a strict read, with the file and line in the error.
  const auto strict = ReadClfFile(path, corpus_);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find(path), std::string::npos);
  EXPECT_NE(strict.status().message().find("line"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sds::trace

#include "trace/clf.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "trace/corpus.h"
#include "trace/filter.h"
#include "trace/generator.h"
#include "trace/link_graph.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

TEST(ClfTimeTest, EpochFormatsAsJan1995) {
  EXPECT_EQ(FormatClfTime(0.0), "[01/Jan/1995:00:00:00 +0000]");
}

TEST(ClfTimeTest, FormatsDayRollovers) {
  EXPECT_EQ(FormatClfTime(86400.0 + 3661.0), "[02/Jan/1995:01:01:01 +0000]");
  // 31 days of January.
  EXPECT_EQ(FormatClfTime(31.0 * 86400.0), "[01/Feb/1995:00:00:00 +0000]");
  // 1995 is not a leap year: Feb has 28 days.
  EXPECT_EQ(FormatClfTime((31.0 + 28.0) * 86400.0),
            "[01/Mar/1995:00:00:00 +0000]");
}

TEST(ClfTimeTest, ParseRoundTrip) {
  for (const double t : {0.0, 59.0, 86399.0, 86400.0, 123456.0, 7776000.0}) {
    const auto parsed = ParseClfTime(FormatClfTime(t));
    ASSERT_TRUE(parsed.ok()) << FormatClfTime(t);
    EXPECT_DOUBLE_EQ(parsed.value(), std::floor(t));
  }
}

TEST(ClfTimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseClfTime("01/Jan/1995:00:00:00").ok());  // no brackets
  EXPECT_FALSE(ParseClfTime("[01/Foo/1995:00:00:00 +0000]").ok());
  EXPECT_FALSE(ParseClfTime("[bad]").ok());
}

TEST(ClfLineTest, FormatAndParse) {
  ClfRecord rec;
  rec.host = "h12.org3.example.com";
  rec.time = 3600.0;
  rec.method = "GET";
  rec.path = "/docs/0001.html";
  rec.status = 200;
  rec.bytes = 4321;
  const std::string line = FormatClfLine(rec);
  EXPECT_EQ(line,
            "h12.org3.example.com - - [01/Jan/1995:01:00:00 +0000] "
            "\"GET /docs/0001.html HTTP/1.0\" 200 4321");
  const auto parsed = ParseClfLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().host, rec.host);
  EXPECT_EQ(parsed.value().path, rec.path);
  EXPECT_EQ(parsed.value().status, 200);
  EXPECT_EQ(parsed.value().bytes, 4321u);
  EXPECT_DOUBLE_EQ(parsed.value().time, 3600.0);
}

TEST(ClfLineTest, ParseDashBytes) {
  const auto parsed = ParseClfLine(
      "h1.cs.bu.edu - - [01/Jan/1995:00:00:00 +0000] \"GET /x HTTP/1.0\" "
      "404 -");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().bytes, 0u);
}

TEST(ClfLineTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseClfLine("nonsense").ok());
  EXPECT_FALSE(ParseClfLine("host - - [01/Jan/1995:00:00:00 +0000] 200 5").ok());
}

class ClfRoundTripTest : public ::testing::Test {
 protected:
  ClfRoundTripTest() {
    CorpusConfig cconfig;
    cconfig.pages_per_server = 30;
    cconfig.images_per_server = 40;
    cconfig.archives_per_server = 3;
    Rng rng(11);
    corpus_ = GenerateCorpus(cconfig, &rng);
    LinkGraph graph(&corpus_, LinkGraphConfig{}, &rng);
    TraceGeneratorConfig tconfig;
    tconfig.num_clients = 40;
    tconfig.days = 3;
    tconfig.sessions_per_client_per_day = 1.0;
    trace_ = GenerateTrace(tconfig, &graph, &rng).trace;
  }

  Corpus corpus_;
  Trace trace_;
};

TEST_F(ClfRoundTripTest, TraceToClfToTracePreservesCleanRequests) {
  const auto lines = TraceToClf(trace_, corpus_);
  ASSERT_EQ(lines.size(), trace_.size());
  const auto round = ClfToTrace(lines, corpus_);
  ASSERT_TRUE(round.ok());
  const Trace& rt = round.value();
  ASSERT_EQ(rt.size(), trace_.size());

  // After preprocessing, both traces must be identical request-for-request
  // (CLF timestamps have 1-second resolution, so compare with tolerance).
  const Trace a = FilterTrace(trace_);
  const Trace b = FilterTrace(rt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.requests[i].doc, b.requests[i].doc) << i;
    EXPECT_EQ(a.requests[i].client, b.requests[i].client) << i;
    EXPECT_EQ(a.requests[i].remote_client, b.requests[i].remote_client) << i;
    EXPECT_NEAR(a.requests[i].time, b.requests[i].time, 1.0) << i;
    EXPECT_EQ(a.requests[i].bytes, b.requests[i].bytes) << i;
  }
}

TEST_F(ClfRoundTripTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sds_clf_test.log";
  ASSERT_TRUE(WriteClfFile(path, trace_, corpus_).ok());
  const auto read = ReadClfFile(path, corpus_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), trace_.size());
  std::remove(path.c_str());
}

TEST_F(ClfRoundTripTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadClfFile("/no/such/file.log", corpus_).ok());
}

TEST_F(ClfRoundTripTest, UnknownPathsBecomeNotFound) {
  const std::vector<std::string> lines = {
      "h1.cs.bu.edu - - [01/Jan/1995:00:00:00 +0000] "
      "\"GET /definitely/missing.html HTTP/1.0\" 200 100"};
  const auto round = ClfToTrace(lines, corpus_);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().size(), 1u);
  EXPECT_EQ(round.value().requests[0].kind, RequestKind::kNotFound);
}

TEST_F(ClfRoundTripTest, StrictModeNamesOffendingLine) {
  std::vector<std::string> lines = TraceToClf(trace_, corpus_);
  ASSERT_GE(lines.size(), 3u);
  lines[2] = "truncated garbage";
  const auto strict = ClfToTrace(lines, corpus_);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kParseError);
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos)
      << strict.status().message();
}

TEST_F(ClfRoundTripTest, LenientModeSkipsAndCountsMalformedLines) {
  std::vector<std::string> lines = TraceToClf(trace_, corpus_);
  const size_t total = lines.size();
  ASSERT_GE(total, 5u);
  lines[0] = "truncated garbage";                // no timestamp
  lines[3] = "h1.cs.bu.edu - - [01/Jan/1995] "   // bad timestamp
             "\"GET /a HTTP/1.0\" 200 5";
  lines[4] = "bad-host - - [01/Jan/1995:00:00:00 +0000] "  // bad host
             "\"GET /a HTTP/1.0\" 200 5";
  lines.push_back("");  // blank lines are not counted at all

  ClfReadOptions options;
  options.lenient = true;
  ClfReadStats stats;
  const auto round = ClfToTrace(lines, corpus_, options, &stats);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(stats.lines, total);
  EXPECT_EQ(stats.skipped_lines, 3u);
  EXPECT_EQ(round.value().size(), total - 3);
}

TEST_F(ClfRoundTripTest, LenientFileReadReportsPerFileSkipCount) {
  const std::string path = ::testing::TempDir() + "/sds_clf_lenient_test.log";
  ASSERT_TRUE(WriteClfFile(path, trace_, corpus_).ok());
  {
    std::ofstream append(path, std::ios::app);
    append << "garbage line one\n\ngarbage line two\n";
  }
  ClfReadOptions options;
  options.lenient = true;
  ClfReadStats stats;
  const auto read = ReadClfFile(path, corpus_, options, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.skipped_lines, 2u);
  EXPECT_EQ(stats.lines, trace_.size() + 2);
  EXPECT_EQ(read.value().size(), trace_.size());

  // The same file fails a strict read, with the file and line in the error.
  const auto strict = ReadClfFile(path, corpus_);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find(path), std::string::npos);
  EXPECT_NE(strict.status().message().find("line"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fuzz-style round-trip: randomized corruptions with exact accounting
// ---------------------------------------------------------------------------

// Applies one guaranteed-unparseable corruption; the type selects which
// ParseClfLine/ClientFromHost failure path it must hit.
std::string CorruptLine(const std::string& line, uint64_t type) {
  std::string out = line;
  switch (type % 6) {
    case 0: {  // no timestamp: strip the brackets
      for (char& c : out) {
        if (c == '[' || c == ']') c = ' ';
      }
      return out;
    }
    case 1: {  // no request field: strip the quotes
      std::string stripped;
      for (const char c : out) {
        if (c != '"') stripped.push_back(c);
      }
      return stripped;
    }
    case 2: {  // bad CLF time: garble the month name
      const size_t lb = out.find('[');
      const size_t slash = out.find('/', lb);
      out.replace(slash + 1, 3, "Xyz");
      return out;
    }
    case 3: {  // non-numeric status
      const size_t q2 = out.rfind('"');
      return out.substr(0, q2 + 1) + " xx -";
    }
    case 4: {  // host that ClientFromHost rejects
      return "bad-host" + out.substr(out.find(' '));
    }
    case 5:
    default: {  // truncation before the timestamp
      return out.substr(0, out.find('['));
    }
  }
}

// Garbles the request path with non-ASCII bytes: still a well-formed CLF
// line, so it must parse (and resolve to kNotFound), never be skipped.
std::string GarblePath(const std::string& line) {
  const size_t q1 = line.find('"');
  const size_t path_begin = line.find(' ', q1) + 1;
  const size_t path_end = line.find(' ', path_begin);
  return line.substr(0, path_begin) + "/fuzz/\xc3\x28\xff\x01.html" +
         line.substr(path_end);
}

size_t CountNotFound(const Trace& trace) {
  size_t n = 0;
  for (const auto& r : trace.requests) {
    if (r.kind == RequestKind::kNotFound) ++n;
  }
  return n;
}

TEST_F(ClfRoundTripTest, FuzzedLenientReadCountsEverySkipExactly) {
  const std::vector<std::string> pristine = TraceToClf(trace_, corpus_);
  ASSERT_GE(pristine.size(), 60u);
  const size_t baseline_notfound = [&] {
    ClfReadOptions options;
    options.lenient = true;
    const auto round = ClfToTrace(pristine, corpus_, options);
    return CountNotFound(round.value());
  }();

  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<std::string> lines = pristine;
    // Pick distinct victims: a prefix of a seeded shuffle.
    std::vector<size_t> order(lines.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size() - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }
    const size_t num_corrupt = 20 + rng.NextBounded(10);
    const size_t num_garbled = 5 + rng.NextBounded(5);
    for (size_t k = 0; k < num_corrupt; ++k) {
      lines[order[k]] = CorruptLine(lines[order[k]], rng.Next());
    }
    for (size_t k = num_corrupt; k < num_corrupt + num_garbled; ++k) {
      lines[order[k]] = GarblePath(lines[order[k]]);
    }
    // Sprinkle blank lines (never counted, never skipped).
    const size_t num_blank = 3 + rng.NextBounded(5);
    for (size_t k = 0; k < num_blank; ++k) {
      lines.insert(lines.begin() + rng.NextBounded(lines.size() + 1),
                   k % 2 == 0 ? "" : "   ");
    }

    ClfReadOptions options;
    options.lenient = true;
    ClfReadStats stats;
    const auto round = ClfToTrace(lines, corpus_, options, &stats);
    ASSERT_TRUE(round.ok());
    // Exact accounting: every non-blank line is either a record or a
    // counted skip — nothing crashes, nothing disappears silently.
    EXPECT_EQ(stats.lines, pristine.size());
    EXPECT_EQ(stats.skipped_lines, num_corrupt);
    EXPECT_EQ(round.value().size(), pristine.size() - num_corrupt);
    // Garbled-path lines surface as kNotFound records, not as skips.
    EXPECT_GE(CountNotFound(round.value()), baseline_notfound);
  }
}

TEST_F(ClfRoundTripTest, FuzzedStrictReadNamesTheExactLine) {
  const std::vector<std::string> pristine = TraceToClf(trace_, corpus_);
  ASSERT_GE(pristine.size(), 20u);
  for (const uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<std::string> lines = pristine;
    const size_t victim = rng.NextBounded(lines.size());
    lines[victim] = CorruptLine(lines[victim], rng.Next());
    // A leading blank shifts the 1-based numbering: blanks are skipped by
    // the parser but still occupy a line number.
    const bool leading_blank = rng.NextBernoulli(0.5);
    if (leading_blank) lines.insert(lines.begin(), "");
    const auto strict = ClfToTrace(lines, corpus_);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kParseError);
    const std::string expected =
        "line " + std::to_string(victim + (leading_blank ? 2 : 1)) + ":";
    EXPECT_NE(strict.status().message().find(expected), std::string::npos)
        << strict.status().message();
  }
}

}  // namespace
}  // namespace sds::trace

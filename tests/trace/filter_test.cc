#include "trace/filter.h"

#include <gtest/gtest.h>

namespace sds::trace {
namespace {

Trace MakeRawTrace() {
  Trace raw;
  raw.num_clients = 2;
  Request r;
  r.time = 1.0;
  r.client = 0;
  r.doc = 10;
  r.bytes = 100;
  r.kind = RequestKind::kDocument;
  raw.requests.push_back(r);
  r.time = 2.0;
  r.doc = 11;
  r.kind = RequestKind::kAlias;
  raw.requests.push_back(r);
  r.time = 3.0;
  r.doc = kInvalidDocument;
  r.bytes = 0;
  r.kind = RequestKind::kNotFound;
  raw.requests.push_back(r);
  r.time = 4.0;
  r.kind = RequestKind::kScript;
  r.bytes = 512;
  raw.requests.push_back(r);
  return raw;
}

TEST(FilterTest, DropsNoiseKeepsDocuments) {
  FilterStats stats;
  const Trace clean = FilterTrace(MakeRawTrace(), &stats);
  EXPECT_EQ(clean.size(), 2u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.dropped_not_found, 1u);
  EXPECT_EQ(stats.dropped_script, 1u);
  EXPECT_EQ(stats.canonicalized_alias, 1u);
}

TEST(FilterTest, AliasCanonicalized) {
  const Trace clean = FilterTrace(MakeRawTrace());
  for (const auto& r : clean.requests) {
    EXPECT_EQ(r.kind, RequestKind::kDocument);
  }
  EXPECT_EQ(clean.requests[1].doc, 11u);
}

TEST(FilterTest, PreservesOrderAndMetadata) {
  const Trace raw = MakeRawTrace();
  const Trace clean = FilterTrace(raw);
  EXPECT_EQ(clean.num_clients, raw.num_clients);
  EXPECT_LT(clean.requests[0].time, clean.requests[1].time);
}

TEST(FilterTest, EmptyTrace) {
  FilterStats stats;
  const Trace clean = FilterTrace(Trace{}, &stats);
  EXPECT_TRUE(clean.empty());
  EXPECT_EQ(stats.kept, 0u);
}

TEST(FilterTest, NullStatsPointerOk) {
  EXPECT_EQ(FilterTrace(MakeRawTrace(), nullptr).size(), 2u);
}

}  // namespace
}  // namespace sds::trace

#include "trace/link_graph.h"

#include <cmath>
#include <unordered_map>
#include <gtest/gtest.h>

#include "trace/corpus.h"
#include "util/rng.h"

namespace sds::trace {
namespace {

class LinkGraphTest : public ::testing::Test {
 protected:
  LinkGraphTest() {
    CorpusConfig config;
    config.pages_per_server = 80;
    config.images_per_server = 120;
    config.archives_per_server = 8;
    Rng rng(42);
    corpus_ = GenerateCorpus(config, &rng);
    graph_rng_ = Rng(43);
    graph_ = std::make_unique<LinkGraph>(&corpus_, LinkGraphConfig{},
                                         &graph_rng_);
  }

  Corpus corpus_;
  Rng graph_rng_{0};
  std::unique_ptr<LinkGraph> graph_;
};

TEST_F(LinkGraphTest, OnlyPagesHaveEdges) {
  for (const auto& d : corpus_.docs()) {
    if (d.kind != DocumentKind::kPage) {
      EXPECT_TRUE(graph_->Embedded(d.id).empty());
      EXPECT_TRUE(graph_->OutLinks(d.id).empty());
    }
  }
}

TEST_F(LinkGraphTest, EmbeddedTargetsAreImagesOnSameServer) {
  for (const auto& d : corpus_.docs()) {
    for (const DocumentId img : graph_->Embedded(d.id)) {
      EXPECT_EQ(corpus_.doc(img).kind, DocumentKind::kImage);
      EXPECT_EQ(corpus_.doc(img).server, d.server);
    }
  }
}

TEST_F(LinkGraphTest, OutLinksStayOnServerAndAvoidImages) {
  for (const auto& d : corpus_.docs()) {
    for (const DocumentId target : graph_->OutLinks(d.id)) {
      EXPECT_NE(corpus_.doc(target).kind, DocumentKind::kImage);
      EXPECT_EQ(corpus_.doc(target).server, d.server);
      EXPECT_NE(target, d.id);
    }
  }
}

TEST_F(LinkGraphTest, MeanOutDegreeNearConfig) {
  const double mean = static_cast<double>(graph_->TotalOutLinks()) / 80.0;
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 10.0);
}

TEST_F(LinkGraphTest, SampleEntryPageReturnsPages) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const DocumentId page = graph_->SampleEntryPage(0, i % 2 == 0, &rng);
    EXPECT_EQ(corpus_.doc(page).kind, DocumentKind::kPage);
  }
}

TEST_F(LinkGraphTest, HomePageBiasConcentratesEntries) {
  Rng rng(2);
  std::unordered_map<DocumentId, int> counts;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ++counts[graph_->SampleEntryPage(0, true, &rng)];
  }
  int max_count = 0;
  for (const auto& [page, c] : counts) max_count = std::max(max_count, c);
  // Default home_page_bias = 0.6: the home page should dominate.
  EXPECT_GT(max_count, n / 2);
}

TEST_F(LinkGraphTest, RemoteEntriesFavorRemoteAudience) {
  Rng rng(3);
  const int n = 20000;
  int remote_hits_remote_class = 0, local_hits_remote_class = 0;
  for (int i = 0; i < n; ++i) {
    const auto r = corpus_.doc(graph_->SampleEntryPage(0, true, &rng));
    const auto l = corpus_.doc(graph_->SampleEntryPage(0, false, &rng));
    if (r.audience == AudienceClass::kRemote) ++remote_hits_remote_class;
    if (l.audience == AudienceClass::kRemote) ++local_hits_remote_class;
  }
  // Remote clients must hit remote-class documents far more often than
  // local clients do.
  EXPECT_GT(remote_hits_remote_class, 2 * local_hits_remote_class);
}

TEST_F(LinkGraphTest, SampleOutLinkUniformOverLinks) {
  Rng rng(4);
  // Find a page with at least 3 links.
  DocumentId page = kInvalidDocument;
  for (const auto& d : corpus_.docs()) {
    if (graph_->OutLinks(d.id).size() >= 3) {
      page = d.id;
      break;
    }
  }
  ASSERT_NE(page, kInvalidDocument);
  const auto& links = graph_->OutLinks(page);
  std::unordered_map<DocumentId, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[graph_->SampleOutLink(page, &rng)];
  // Duplicated link targets get proportionally more probability; count
  // multiplicity.
  std::unordered_map<DocumentId, int> multiplicity;
  for (const DocumentId t : links) ++multiplicity[t];
  for (const auto& [target, m] : multiplicity) {
    const double expected =
        static_cast<double>(m) / static_cast<double>(links.size()) * n;
    EXPECT_NEAR(counts[target], expected, 5.0 * std::sqrt(expected) + 10.0);
  }
}

TEST_F(LinkGraphTest, SampleOutLinkFromLinklessPage) {
  Rng rng(5);
  for (const auto& d : corpus_.docs()) {
    if (d.kind == DocumentKind::kPage && graph_->OutLinks(d.id).empty()) {
      EXPECT_EQ(graph_->SampleOutLink(d.id, &rng), kInvalidDocument);
      return;
    }
  }
  GTEST_SKIP() << "no link-less page in this corpus";
}

TEST_F(LinkGraphTest, AdvanceDayPreservesInvariants) {
  Rng rng(6);
  const size_t links_before = graph_->TotalOutLinks();
  const size_t embedded_before = graph_->TotalEmbedded();
  for (int day = 0; day < 30; ++day) graph_->AdvanceDay(&rng);
  // Rewiring replaces edges one-for-one.
  EXPECT_EQ(graph_->TotalOutLinks(), links_before);
  EXPECT_EQ(graph_->TotalEmbedded(), embedded_before);
  for (const auto& d : corpus_.docs()) {
    for (const DocumentId target : graph_->OutLinks(d.id)) {
      EXPECT_EQ(corpus_.doc(target).server, d.server);
    }
  }
}

TEST_F(LinkGraphTest, AdvanceDayChangesSomething) {
  Rng rng(7);
  std::vector<std::vector<DocumentId>> before;
  for (const auto& d : corpus_.docs()) before.push_back(graph_->OutLinks(d.id));
  for (int day = 0; day < 60; ++day) graph_->AdvanceDay(&rng);
  size_t changed = 0;
  for (const auto& d : corpus_.docs()) {
    if (graph_->OutLinks(d.id) != before[d.id]) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST(LinkGraphMultiServerTest, EdgesNeverCrossServers) {
  CorpusConfig config;
  config.num_servers = 3;
  config.pages_per_server = 30;
  config.images_per_server = 40;
  config.archives_per_server = 4;
  Rng rng(8);
  const Corpus corpus = GenerateCorpus(config, &rng);
  const LinkGraph graph(&corpus, LinkGraphConfig{}, &rng);
  for (const auto& d : corpus.docs()) {
    for (const DocumentId t : graph.OutLinks(d.id)) {
      EXPECT_EQ(corpus.doc(t).server, d.server);
    }
    for (const DocumentId t : graph.Embedded(d.id)) {
      EXPECT_EQ(corpus.doc(t).server, d.server);
    }
  }
}

}  // namespace
}  // namespace sds::trace

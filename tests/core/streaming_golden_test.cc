// Golden-grid equivalence for the streaming event pipeline: every figure
// sweep must produce bit-identical numbers whether the workload
// materializes its trace (batch) or regenerates it per cursor (streaming),
// and regardless of the sweep worker count. The two workloads share one
// WorkloadConfig, so any drift in the generator replay, the filter, the
// streaming prepare pass or the cursor-fed simulators shows up as a
// numeric mismatch here.

#include <gtest/gtest.h>

#include <vector>

#include "core/experiments.h"
#include "core/sweep.h"
#include "core/workload.h"
#include "dissem/simulator.h"
#include "spec/metrics.h"

namespace sds::core {
namespace {

const Workload& BatchWorkload() {
  static const Workload* w = new Workload(MakeWorkload(SmallConfig()));
  return *w;
}

const Workload& StreamingWorkload() {
  static const Workload* w = [] {
    WorkloadConfig config = SmallConfig();
    config.streaming = true;
    return new Workload(MakeWorkload(config));
  }();
  return *w;
}

// Worker counts the streaming side is swept with (batch reference always
// runs single-threaded). 0 = auto (hardware concurrency).
const std::vector<uint32_t> kWorkerGrid = {1, 2, 0};

SweepOptions Workers(uint32_t workers) {
  SweepOptions options;
  options.workers = workers;
  return options;
}

void ExpectDissemEq(const dissem::DisseminationResult& a,
                    const dissem::DisseminationResult& b) {
  EXPECT_EQ(a.baseline_bytes_hops, b.baseline_bytes_hops);
  EXPECT_EQ(a.with_proxies_bytes_hops, b.with_proxies_bytes_hops);
  EXPECT_EQ(a.saved_fraction, b.saved_fraction);
  EXPECT_EQ(a.proxy_hit_fraction, b.proxy_hit_fraction);
  EXPECT_EQ(a.storage_per_proxy_bytes, b.storage_per_proxy_bytes);
  EXPECT_EQ(a.total_storage_bytes, b.total_storage_bytes);
  EXPECT_EQ(a.proxy_requests, b.proxy_requests);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.shielding_overflow_requests, b.shielding_overflow_requests);
  EXPECT_EQ(a.stale_proxy_requests, b.stale_proxy_requests);
  EXPECT_EQ(a.stale_fraction, b.stale_fraction);
  EXPECT_EQ(a.proxy_nodes, b.proxy_nodes);
  EXPECT_EQ(a.unavailable_requests, b.unavailable_requests);
  EXPECT_EQ(a.unavailable_fraction, b.unavailable_fraction);
  EXPECT_EQ(a.baseline_unavailable_requests,
            b.baseline_unavailable_requests);
  EXPECT_EQ(a.baseline_unavailable_fraction,
            b.baseline_unavailable_fraction);
  EXPECT_EQ(a.failover_requests, b.failover_requests);
  EXPECT_EQ(a.degraded_bytes_hops, b.degraded_bytes_hops);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.load_imbalance_max_mean, b.load_imbalance_max_mean);
  EXPECT_EQ(a.load_imbalance_p99_mean, b.load_imbalance_p99_mean);
  EXPECT_EQ(a.per_level_imbalance, b.per_level_imbalance);
}

void ExpectMetricsEq(const spec::SpeculationMetrics& a,
                     const spec::SpeculationMetrics& b) {
  EXPECT_EQ(a.bandwidth_ratio, b.bandwidth_ratio);
  EXPECT_EQ(a.server_load_ratio, b.server_load_ratio);
  EXPECT_EQ(a.service_time_ratio, b.service_time_ratio);
  EXPECT_EQ(a.miss_rate_ratio, b.miss_rate_ratio);
  EXPECT_EQ(a.extra_traffic, b.extra_traffic);
  EXPECT_EQ(a.unavailable_request_fraction, b.unavailable_request_fraction);
}

// Streaming and batch workloads must agree on the trace-derived metadata
// before any figure can.
TEST(StreamingGoldenTest, WorkloadMetadataMatches) {
  const Workload& batch = BatchWorkload();
  const Workload& stream = StreamingWorkload();
  ASSERT_TRUE(stream.streaming());
  EXPECT_EQ(batch.num_clients(), stream.num_clients());
  EXPECT_EQ(batch.num_servers(), stream.num_servers());
  EXPECT_EQ(batch.num_sessions(), stream.num_sessions());
  EXPECT_EQ(batch.clean_span(), stream.clean_span());
  EXPECT_EQ(batch.client_is_remote(), stream.client_is_remote());
  ASSERT_EQ(batch.updates().size(), stream.updates().size());
  for (size_t i = 0; i < batch.updates().size(); ++i) {
    EXPECT_EQ(batch.updates()[i].day, stream.updates()[i].day) << i;
    EXPECT_EQ(batch.updates()[i].doc, stream.updates()[i].doc) << i;
  }
  EXPECT_EQ(batch.filter_stats().kept, stream.filter_stats().kept);
  EXPECT_EQ(batch.filter_stats().dropped_not_found,
            stream.filter_stats().dropped_not_found);
  EXPECT_EQ(batch.filter_stats().dropped_script,
            stream.filter_stats().dropped_script);
  EXPECT_EQ(batch.filter_stats().canonicalized_alias,
            stream.filter_stats().canonicalized_alias);
}

TEST(StreamingGoldenTest, Fig3Matches) {
  constexpr uint32_t kProxies = 4;
  const Fig3Result batch =
      RunFig3(BatchWorkload(), kProxies, Workers(1));
  for (const uint32_t workers : kWorkerGrid) {
    const Fig3Result stream =
        RunFig3(StreamingWorkload(), kProxies, Workers(workers));
    EXPECT_EQ(batch.saved_top10, stream.saved_top10) << workers;
    EXPECT_EQ(batch.saved_top4, stream.saved_top4) << workers;
    EXPECT_EQ(batch.storage_top10, stream.storage_top10) << workers;
    EXPECT_EQ(batch.storage_top4, stream.storage_top4) << workers;
    EXPECT_EQ(batch.saved_top10_tailored, stream.saved_top10_tailored)
        << workers;
  }
}

TEST(StreamingGoldenTest, Fig5Matches) {
  const std::vector<double> grid = {1.0, 0.4, 0.1};
  const Fig5Result batch = RunFig5(BatchWorkload(), grid, Workers(1));
  for (const uint32_t workers : kWorkerGrid) {
    const Fig5Result stream =
        RunFig5(StreamingWorkload(), grid, Workers(workers));
    ASSERT_EQ(batch.points.size(), stream.points.size());
    for (size_t i = 0; i < batch.points.size(); ++i) {
      EXPECT_EQ(batch.points[i].tp, stream.points[i].tp);
      ExpectMetricsEq(batch.points[i].metrics, stream.points[i].metrics);
    }
  }
}

TEST(StreamingGoldenTest, Fig7Matches) {
  const std::vector<double> rates = {0.0, 0.05};
  const std::vector<uint32_t> proxies = {1, 4};
  const Fig7Result batch =
      RunFig7(BatchWorkload(), rates, proxies, Workers(1));
  for (const uint32_t workers : kWorkerGrid) {
    const Fig7Result stream =
        RunFig7(StreamingWorkload(), rates, proxies, Workers(workers));
    ASSERT_EQ(batch.cells.size(), stream.cells.size());
    for (size_t i = 0; i < batch.cells.size(); ++i) {
      ExpectDissemEq(batch.cells[i], stream.cells[i]);
    }
  }
}

TEST(StreamingGoldenTest, Fig8Matches) {
  const std::vector<double> rates = {0.0, 0.10};
  const Fig8Result batch = RunFig8(BatchWorkload(), rates, Workers(1));
  for (const uint32_t workers : kWorkerGrid) {
    const Fig8Result stream =
        RunFig8(StreamingWorkload(), rates, Workers(workers));
    ASSERT_EQ(batch.cells.size(), stream.cells.size());
    for (size_t i = 0; i < batch.cells.size(); ++i) {
      ExpectDissemEq(batch.cells[i].sim, stream.cells[i].sim);
      EXPECT_EQ(batch.cells[i].scheduled_events,
                stream.cells[i].scheduled_events);
      EXPECT_EQ(batch.cells[i].availability, stream.cells[i].availability);
      EXPECT_EQ(batch.cells[i].retry_amplification,
                stream.cells[i].retry_amplification);
      EXPECT_EQ(batch.cells[i].cascade_depth, stream.cells[i].cascade_depth);
      EXPECT_EQ(batch.cells[i].goodput_bytes_per_s,
                stream.cells[i].goodput_bytes_per_s);
    }
  }
}

TEST(StreamingGoldenTest, Fig9Matches) {
  // The balance sweep mixes the d-choice per-point RNG, the proximity
  // placement/allocation path, and a shared fault schedule; all must
  // replay identically from a cursor-fed stream at any worker count.
  const std::vector<double> storages = {0.10};
  const std::vector<uint32_t> proxies = {2, 4};
  const std::vector<uint32_t> ds = {2};
  const Fig9Result batch =
      RunFig9(BatchWorkload(), storages, proxies, ds, Workers(1));
  for (const uint32_t workers : kWorkerGrid) {
    const Fig9Result stream =
        RunFig9(StreamingWorkload(), storages, proxies, ds, Workers(workers));
    ASSERT_EQ(batch.cells.size(), stream.cells.size());
    for (size_t i = 0; i < batch.cells.size(); ++i) {
      ExpectDissemEq(batch.cells[i].sim, stream.cells[i].sim);
      EXPECT_EQ(batch.cells[i].availability, stream.cells[i].availability);
    }
  }
}

}  // namespace
}  // namespace sds::core

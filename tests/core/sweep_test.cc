/// Determinism suite for the parallel sweep engine: the same sweep run at
/// 1, 2 and hardware_concurrency workers must be bit-identical, exceptions
/// must propagate deterministically, and per-point RNG streams must be
/// pure functions of (base seed, point index). Also pins golden values for
/// the paper-figure experiments so the sweep refactor provably does not
/// change any figure.

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.h"
#include "core/workload.h"

namespace sds::core {
namespace {

// ---------------------------------------------------------------------------
// Engine basics and edge cases
// ---------------------------------------------------------------------------

TEST(SweepEngineTest, ZeroPointsIsANoOp) {
  size_t calls = 0;
  const SweepStats stats =
      RunSweep(0, {.workers = 4}, [&](size_t, Rng&) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(stats.points, 0u);
  EXPECT_TRUE(stats.point_seconds.empty());
  EXPECT_DOUBLE_EQ(stats.serial_seconds, 0.0);
}

TEST(SweepEngineTest, OnePointRunsExactlyOnce) {
  std::atomic<int> calls{0};
  const SweepStats stats =
      RunSweep(1, {.workers = 8}, [&](size_t index, Rng&) {
        EXPECT_EQ(index, 0u);
        ++calls;
      });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(stats.points, 1u);
  // The pool never exceeds the point count.
  EXPECT_EQ(stats.workers, 1u);
}

TEST(SweepEngineTest, EveryPointRunsExactlyOnce) {
  constexpr size_t kPoints = 100;
  std::vector<std::atomic<int>> counts(kPoints);
  const SweepStats stats = RunSweep(kPoints, {.workers = 4},
                                    [&](size_t index, Rng&) {
                                      ++counts[index];
                                    });
  for (size_t i = 0; i < kPoints; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "point " << i;
  }
  EXPECT_EQ(stats.workers, 4u);
  ASSERT_EQ(stats.point_seconds.size(), kPoints);
  double sum = 0.0;
  for (const double s : stats.point_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_DOUBLE_EQ(stats.serial_seconds, sum);
  EXPECT_NE(stats.Summary().find("100 points"), std::string::npos);
}

TEST(SweepEngineTest, EnvVariableOverridesAutoWorkerCount) {
  ASSERT_EQ(setenv("SDS_SWEEP_WORKERS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveSweepWorkers(0), 3u);
  // An explicit request always wins over the environment.
  EXPECT_EQ(ResolveSweepWorkers(7), 7u);
  ASSERT_EQ(setenv("SDS_SWEEP_WORKERS", "garbage", 1), 0);
  EXPECT_GE(ResolveSweepWorkers(0), 1u);
  unsetenv("SDS_SWEEP_WORKERS");
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ResolveSweepWorkers(0), hw > 0 ? hw : 1u);
}

// ---------------------------------------------------------------------------
// Exception propagation
// ---------------------------------------------------------------------------

TEST(SweepEngineTest, ExceptionFromAPointPropagates) {
  for (const uint32_t workers : {1u, 4u}) {
    EXPECT_THROW(
        RunSweep(8, {.workers = workers},
                 [](size_t index, Rng&) {
                   if (index == 5) throw std::runtime_error("point 5 failed");
                 }),
        std::runtime_error)
        << "workers=" << workers;
  }
}

TEST(SweepEngineTest, LowestIndexedFailureWinsDeterministically) {
  for (const uint32_t workers : {1u, 2u, 8u}) {
    std::string message;
    std::atomic<int> calls{0};
    try {
      RunSweep(16, {.workers = workers}, [&](size_t index, Rng&) {
        ++calls;
        if (index % 3 == 1) {  // points 1, 4, 7, 10, 13 fail
          throw std::runtime_error("failed " + std::to_string(index));
        }
      });
      FAIL() << "expected an exception at workers=" << workers;
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "failed 1") << "workers=" << workers;
    // A failing point does not cancel the rest of the sweep.
    EXPECT_EQ(calls.load(), 16) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Per-point RNG stream properties (deterministic-seeding contract)
// ---------------------------------------------------------------------------

TEST(SweepPointRngTest, SameIndexYieldsSameStream) {
  for (const size_t index : {size_t{0}, size_t{1}, size_t{31}, size_t{4095}}) {
    Rng a = MakePointRng(42, index);
    Rng b = MakePointRng(42, index);
    for (int draw = 0; draw < 64; ++draw) {
      ASSERT_EQ(a.Next(), b.Next()) << "index " << index;
    }
  }
}

TEST(SweepPointRngTest, DistinctIndicesYieldDistinctStreams) {
  constexpr size_t kStreams = 4096;
  std::set<uint64_t> seeds;
  std::set<uint64_t> first_draws;
  for (size_t i = 0; i < kStreams; ++i) {
    seeds.insert(SweepPointSeed(42, i));
    first_draws.insert(MakePointRng(42, i).Next());
  }
  EXPECT_EQ(seeds.size(), kStreams);
  EXPECT_EQ(first_draws.size(), kStreams);
}

TEST(SweepPointRngTest, BaseSeedSeparatesSweeps) {
  for (size_t index = 0; index < 256; ++index) {
    EXPECT_NE(SweepPointSeed(1, index), SweepPointSeed(2, index))
        << "index " << index;
  }
}

TEST(SweepPointRngTest, StreamsAreStatisticallyIndependent) {
  // No cross-point correlation via shared state: each stream's draws
  // depend only on its own seed. Check that first draws across indices
  // look uniform (mean of U(0,1) within 4 sigma) and that consecutive
  // indices do not produce correlated first draws.
  constexpr size_t kStreams = 4096;
  double sum = 0.0;
  double lag_product = 0.0;
  double prev = 0.0;
  for (size_t i = 0; i < kStreams; ++i) {
    const double u = MakePointRng(42, i).NextDouble();
    sum += u;
    if (i > 0) lag_product += (prev - 0.5) * (u - 0.5);
    prev = u;
  }
  const double mean = sum / kStreams;
  // sigma of the mean = 1/sqrt(12 * n) ~ 0.0045 for n = 4096.
  EXPECT_NEAR(mean, 0.5, 0.02);
  // Lag-1 covariance of independent U(0,1) has sigma ~ 1/(12 sqrt(n)).
  EXPECT_NEAR(lag_product / (kStreams - 1), 0.0, 0.006);
}

// ---------------------------------------------------------------------------
// Parallel == serial on RNG-dependent work
// ---------------------------------------------------------------------------

std::vector<uint64_t> RngSweepDigest(uint32_t workers) {
  constexpr size_t kPoints = 64;
  std::vector<uint64_t> digests(kPoints);
  RunSweep(kPoints, {.workers = workers, .seed = 7}, [&](size_t i, Rng& rng) {
    uint64_t digest = 0;
    for (int draw = 0; draw < 1000; ++draw) {
      digest = Rng::Mix(digest ^ rng.Next());
    }
    digests[i] = digest;
  });
  return digests;
}

TEST(SweepEngineTest, ParallelEqualsSerialBitForBit) {
  const std::vector<uint64_t> serial = RngSweepDigest(1);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  EXPECT_EQ(serial, RngSweepDigest(2));
  EXPECT_EQ(serial, RngSweepDigest(hw));
  EXPECT_EQ(serial, RngSweepDigest(16));
}

// ---------------------------------------------------------------------------
// Determinism of the refactored paper experiments
// ---------------------------------------------------------------------------

class SweepExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(MakeWorkload(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* SweepExperimentsTest::workload_ = nullptr;

TEST_F(SweepExperimentsTest, Fig3TableIsIdenticalForAnyWorkerCount) {
  const Fig3Result serial = RunFig3(*workload_, 4, {.workers = 1});
  const std::string serial_table = serial.ToTable().ToAlignedString();
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (const uint32_t workers : {2u, hw}) {
    const Fig3Result parallel = RunFig3(*workload_, 4, {.workers = workers});
    // Byte-identical rendered table and bit-identical metric vectors.
    EXPECT_EQ(serial_table, parallel.ToTable().ToAlignedString())
        << "workers=" << workers;
    EXPECT_EQ(serial.saved_top10, parallel.saved_top10);
    EXPECT_EQ(serial.saved_top4, parallel.saved_top4);
    EXPECT_EQ(serial.storage_top10, parallel.storage_top10);
    EXPECT_EQ(serial.saved_top10_tailored, parallel.saved_top10_tailored);
  }
}

TEST_F(SweepExperimentsTest, Fig5TablesAreIdenticalForAnyWorkerCount) {
  const std::vector<double> grid = {1.0, 0.5, 0.2, 0.1};
  const Fig5Result serial = RunFig5(*workload_, grid, {.workers = 1});
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (const uint32_t workers : {2u, hw}) {
    const Fig5Result parallel = RunFig5(*workload_, grid, {.workers = workers});
    EXPECT_EQ(serial.ToTable().ToAlignedString(),
              parallel.ToTable().ToAlignedString())
        << "workers=" << workers;
    EXPECT_EQ(serial.ToFig6Table().ToAlignedString(),
              parallel.ToFig6Table().ToAlignedString())
        << "workers=" << workers;
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(serial.points[i].metrics.bandwidth_ratio,
                parallel.points[i].metrics.bandwidth_ratio);
      EXPECT_EQ(serial.points[i].metrics.server_load_ratio,
                parallel.points[i].metrics.server_load_ratio);
      EXPECT_EQ(serial.points[i].metrics.service_time_ratio,
                parallel.points[i].metrics.service_time_ratio);
      EXPECT_EQ(serial.points[i].metrics.miss_rate_ratio,
                parallel.points[i].metrics.miss_rate_ratio);
    }
  }
}

TEST_F(SweepExperimentsTest, Fig7FaultInjectionIsIdenticalForAnyWorkerCount) {
  // Fault injection draws failure schedules and retry jitter; all of it
  // must come from per-point streams so the contract still holds.
  const std::vector<double> rates = {0.0, 0.05, 0.1};
  const std::vector<uint32_t> proxies = {1, 2, 4};
  const Fig7Result serial = RunFig7(*workload_, rates, proxies, {.workers = 1});
  const std::string serial_table = serial.ToTable().ToAlignedString();
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (const uint32_t workers : {2u, hw}) {
    const Fig7Result parallel =
        RunFig7(*workload_, rates, proxies, {.workers = workers});
    EXPECT_EQ(serial_table, parallel.ToTable().ToAlignedString())
        << "workers=" << workers;
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].unavailable_requests,
                parallel.cells[i].unavailable_requests) << i;
      EXPECT_EQ(serial.cells[i].retry_attempts,
                parallel.cells[i].retry_attempts) << i;
      EXPECT_EQ(serial.cells[i].with_proxies_bytes_hops,
                parallel.cells[i].with_proxies_bytes_hops) << i;
      EXPECT_EQ(serial.cells[i].retry_wait_seconds,
                parallel.cells[i].retry_wait_seconds) << i;
      EXPECT_EQ(serial.cells[i].degraded_bytes_hops,
                parallel.cells[i].degraded_bytes_hops) << i;
    }
  }
  // The zero-rate row must behave exactly like the fault-free simulator:
  // no unavailability, no retries, and strictly positive savings.
  for (size_t col = 0; col < proxies.size(); ++col) {
    const auto& cell = serial.cell(0, col);
    EXPECT_EQ(cell.unavailable_requests, 0u);
    EXPECT_EQ(cell.retry_attempts, 0u);
    EXPECT_GT(cell.saved_fraction, 0.0);
  }
  // At a positive failure rate, more proxies never increase unavailability.
  for (size_t row = 1; row < rates.size(); ++row) {
    for (size_t col = 1; col < proxies.size(); ++col) {
      EXPECT_LE(serial.cell(row, col).unavailable_fraction,
                serial.cell(row, col - 1).unavailable_fraction)
          << "rate " << rates[row] << " proxies " << proxies[col];
    }
  }
}

TEST_F(SweepExperimentsTest, Fig8ResilienceIsIdenticalForAnyWorkerCount) {
  // The resilience sweep layers the protection stacks on top of fault
  // injection; schedules, brownouts, breakers, and budgets must all stay
  // on per-point streams.
  const Fig8Result serial = RunFig8(*workload_, {}, {.workers = 1});
  const std::string serial_table = serial.ToTable().ToAlignedString();
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (const uint32_t workers : {2u, hw}) {
    const Fig8Result parallel = RunFig8(*workload_, {}, {.workers = workers});
    EXPECT_EQ(serial_table, parallel.ToTable().ToAlignedString())
        << "workers=" << workers;
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].sim.unavailable_requests,
                parallel.cells[i].sim.unavailable_requests) << i;
      EXPECT_EQ(serial.cells[i].sim.retry_attempts,
                parallel.cells[i].sim.retry_attempts) << i;
      EXPECT_EQ(serial.cells[i].sim.emergent_brownouts,
                parallel.cells[i].sim.emergent_brownouts) << i;
      EXPECT_EQ(serial.cells[i].sim.breaker_open_transitions,
                parallel.cells[i].sim.breaker_open_transitions) << i;
      EXPECT_EQ(serial.cells[i].sim.retries_suppressed_by_budget,
                parallel.cells[i].sim.retries_suppressed_by_budget) << i;
      EXPECT_EQ(serial.cells[i].sim.with_proxies_bytes_hops,
                parallel.cells[i].sim.with_proxies_bytes_hops) << i;
      EXPECT_EQ(serial.cells[i].scheduled_events,
                parallel.cells[i].scheduled_events) << i;
    }
  }

  const auto level_index = [&](Fig8Protection level) {
    const auto it =
        std::find(serial.levels.begin(), serial.levels.end(), level);
    return static_cast<size_t>(it - serial.levels.begin());
  };
  const size_t off = level_index(Fig8Protection::kOff);
  const size_t brk = level_index(Fig8Protection::kBreakers);
  const size_t full = level_index(Fig8Protection::kFull);

  bool saw_off_retries = false;
  bool saw_breaker_opens = false;
  for (size_t row = 0; row < serial.failure_rates.size(); ++row) {
    const auto& c_off = serial.cell(row, off);
    const auto& c_brk = serial.cell(row, brk);
    const auto& c_full = serial.cell(row, full);
    // Every arm of a row replays the same shared fault schedule.
    EXPECT_EQ(c_off.scheduled_events, c_brk.scheduled_events) << row;
    EXPECT_EQ(c_off.scheduled_events, c_full.scheduled_events) << row;
    // Self-protection never costs availability at any swept rate...
    EXPECT_GE(c_brk.availability, c_off.availability) << row;
    EXPECT_GE(c_full.availability, c_off.availability) << row;
    // ...and never manufactures more emergent failure than no defense.
    EXPECT_LE(c_full.sim.emergent_brownouts, c_off.sim.emergent_brownouts)
        << row;
    // Wherever the unprotected arm retried at all, the budgeted stack's
    // retry amplification is strictly lower.
    if (c_off.sim.retry_attempts > 0) {
      saw_off_retries = true;
      EXPECT_LT(c_full.retry_amplification, c_off.retry_amplification)
          << row;
      EXPECT_LT(c_brk.retry_amplification, c_off.retry_amplification)
          << row;
    }
    EXPECT_EQ(c_off.sim.breaker_open_transitions, 0u) << row;
    saw_breaker_opens |= c_brk.sim.breaker_open_transitions > 0;
  }
  EXPECT_TRUE(saw_off_retries);
  EXPECT_TRUE(saw_breaker_opens);

  // The zero-rate row injects nothing: full availability in every arm.
  for (const size_t col : {off, brk, full}) {
    const auto& cell = serial.cell(0, col);
    EXPECT_EQ(cell.scheduled_events, 0u);
    EXPECT_EQ(cell.sim.unavailable_requests, 0u);
    EXPECT_EQ(cell.availability, 1.0);
  }
}

TEST_F(SweepExperimentsTest, Fig9BalanceIsIdenticalForAnyWorkerCount) {
  // The balance sweep adds per-point d-choice sampling on top of the
  // shared fault schedule; both must stay on deterministic streams.
  const std::vector<double> storages = {0.10};
  const std::vector<uint32_t> proxies = {2, 4};
  const std::vector<uint32_t> ds = {2};
  const Fig9Result serial =
      RunFig9(*workload_, storages, proxies, ds, {.workers = 1});
  const std::string serial_table = serial.ToTable().ToAlignedString();
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (const uint32_t workers : {2u, hw}) {
    const Fig9Result parallel =
        RunFig9(*workload_, storages, proxies, ds, {.workers = workers});
    EXPECT_EQ(serial_table, parallel.ToTable().ToAlignedString())
        << "workers=" << workers;
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].sim.proxy_requests,
                parallel.cells[i].sim.proxy_requests) << i;
      EXPECT_EQ(serial.cells[i].sim.with_proxies_bytes_hops,
                parallel.cells[i].sim.with_proxies_bytes_hops) << i;
      EXPECT_EQ(serial.cells[i].sim.load_imbalance_max_mean,
                parallel.cells[i].sim.load_imbalance_max_mean) << i;
      EXPECT_EQ(serial.cells[i].sim.unavailable_requests,
                parallel.cells[i].sim.unavailable_requests) << i;
      EXPECT_EQ(serial.cells[i].availability,
                parallel.cells[i].availability) << i;
    }
  }

  const auto arm_index = [&](Fig9Policy policy, uint32_t d, bool faulted) {
    for (size_t i = 0; i < serial.arms.size(); ++i) {
      if (serial.arms[i].policy == policy && serial.arms[i].d == d &&
          serial.arms[i].faulted == faulted) {
        return i;
      }
    }
    return size_t{0};
  };
  for (size_t row = 0; row < serial.rows.size(); ++row) {
    const auto& c_static =
        serial.cell(row, arm_index(Fig9Policy::kStatic, 1, false));
    const auto& c_d2 =
        serial.cell(row, arm_index(Fig9Policy::kDChoice, 2, false));
    const auto& c_prox =
        serial.cell(row, arm_index(Fig9Policy::kProximity, 1, false));
    // Two choices beat one: at equal storage the randomized arm's max/mean
    // proxy load is no worse than the static optimum's (strictly better
    // whenever the static split is skewed at all).
    EXPECT_LE(c_d2.sim.load_imbalance_max_mean,
              c_static.sim.load_imbalance_max_mean) << "row " << row;
    // Fault-free arms are fully available and all save bandwidth.
    for (const auto* c : {&c_static, &c_d2, &c_prox}) {
      EXPECT_EQ(c->sim.unavailable_requests, 0u) << "row " << row;
      EXPECT_EQ(c->availability, 1.0) << "row " << row;
      EXPECT_GT(c->sim.saved_fraction, 0.0) << "row " << row;
    }
    // Faulted arms replay a shared non-empty schedule.
    const auto& f_static =
        serial.cell(row, arm_index(Fig9Policy::kStatic, 1, true));
    EXPECT_LT(f_static.availability, 1.0) << "row " << row;
    EXPECT_GT(f_static.availability, 0.5) << "row " << row;
  }
}

TEST_F(SweepExperimentsTest, FineTuningSweepsAreIdenticalForAnyWorkerCount) {
  const std::string maxsize_serial =
      RunExpMaxSize(*workload_, 0.2, {.workers = 1}).ToTable()
          .ToAlignedString();
  EXPECT_EQ(maxsize_serial,
            RunExpMaxSize(*workload_, 0.2, {.workers = 4}).ToTable()
                .ToAlignedString());
  const std::string coop_serial =
      RunExpCooperative(*workload_, {.workers = 1}).ToTable()
          .ToAlignedString();
  EXPECT_EQ(coop_serial,
            RunExpCooperative(*workload_, {.workers = 4}).ToTable()
                .ToAlignedString());
}

// ---------------------------------------------------------------------------
// Golden regression: pin the paper-figure numbers (SmallConfig workload,
// default seeds) so the sweep engine provably does not change any figure.
// Values recorded from the serial path at the time the engine landed.
// ---------------------------------------------------------------------------

TEST_F(SweepExperimentsTest, GoldenFig1Coverage) {
  const Fig1Result result = RunFig1(*workload_);
  EXPECT_NEAR(result.top_half_percent_coverage, 0.41904024890974473, 1e-9);
  EXPECT_NEAR(result.top_ten_percent_coverage, 0.92399951633502864, 1e-9);
  EXPECT_EQ(result.accessed_docs, 170u);
  EXPECT_EQ(result.total_docs, 332u);
}

TEST(SweepGoldenTest, GoldenTab2WorkedNumbers) {
  const Tab2Result result = RunTab2();
  EXPECT_NEAR(result.storage_10_servers_90pct, 36859053.833744928, 1.0);
  EXPECT_NEAR(result.shield_100_servers_500mb, 0.96219171936765746, 1e-9);
}

TEST_F(SweepExperimentsTest, GoldenFig6Grid) {
  const Fig5Result result =
      RunFig5(*workload_, {1.0, 0.5, 0.2}, {.workers = 0});
  ASSERT_EQ(result.points.size(), 3u);
  const struct {
    double bw, load, time, miss;
  } expected[] = {
      {1.0041881918724975, 0.96365539934190847, 0.95258184119938183,
       0.94146243872170432},
      {1.0634609410122278, 0.69383787017648824, 0.64808137762783535,
       0.60213545400809099},
      {1.2877901684453081, 0.5937780436733473, 0.5725091738996323,
       0.55115225138066248},
  };
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.points[i].metrics.bandwidth_ratio, expected[i].bw, 1e-9)
        << "tp point " << i;
    EXPECT_NEAR(result.points[i].metrics.server_load_ratio, expected[i].load,
                1e-9);
    EXPECT_NEAR(result.points[i].metrics.service_time_ratio, expected[i].time,
                1e-9);
    EXPECT_NEAR(result.points[i].metrics.miss_rate_ratio, expected[i].miss,
                1e-9);
  }
}

TEST_F(SweepExperimentsTest, GoldenFig6GridIncrementalClosure) {
  // ClosureMode::kIncremental must reproduce the batch goldens above to
  // the bit — same tolerance, same expected values.
  const Fig5Result result =
      RunFig5(*workload_, {1.0, 0.5, 0.2}, {.workers = 0},
              spec::ClosureMode::kIncremental);
  ASSERT_EQ(result.points.size(), 3u);
  const struct {
    double bw, load, time, miss;
  } expected[] = {
      {1.0041881918724975, 0.96365539934190847, 0.95258184119938183,
       0.94146243872170432},
      {1.0634609410122278, 0.69383787017648824, 0.64808137762783535,
       0.60213545400809099},
      {1.2877901684453081, 0.5937780436733473, 0.5725091738996323,
       0.55115225138066248},
  };
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.points[i].metrics.bandwidth_ratio, expected[i].bw, 1e-9)
        << "tp point " << i;
    EXPECT_NEAR(result.points[i].metrics.server_load_ratio, expected[i].load,
                1e-9);
    EXPECT_NEAR(result.points[i].metrics.service_time_ratio, expected[i].time,
                1e-9);
    EXPECT_NEAR(result.points[i].metrics.miss_rate_ratio, expected[i].miss,
                1e-9);
  }
}

TEST_F(SweepExperimentsTest, UpdateCycleTableIdenticalUnderIncremental) {
  // RunExpUpdateCycle exercises every (D, D') combination of the §3.4
  // stability grid; the rendered tables must agree byte-for-byte across
  // closure modes.
  const std::string batch =
      RunExpUpdateCycle(*workload_, 0.25, {.workers = 2},
                        spec::ClosureMode::kBatch)
          .ToTable()
          .ToAlignedString();
  const std::string incremental =
      RunExpUpdateCycle(*workload_, 0.25, {.workers = 2},
                        spec::ClosureMode::kIncremental)
          .ToTable()
          .ToAlignedString();
  EXPECT_EQ(batch, incremental);
}

TEST_F(SweepExperimentsTest, GoldenFig3Savings) {
  const Fig3Result result = RunFig3(*workload_, 4);
  ASSERT_EQ(result.saved_top10.size(), 4u);
  const double expected_top10[] = {0.29893609525007925, 0.34528378297879148,
                                   0.3802785016670881, 0.39322634834990777};
  const double expected_top4[] = {0.13130684153056404, 0.14967487296579218,
                                  0.16299925895090783, 0.16836204225009344};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.saved_top10[i], expected_top10[i], 1e-9) << i;
    EXPECT_NEAR(result.saved_top4[i], expected_top4[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace sds::core
